"""Microbenchmark drivers — one per panel of Fig. 5 / Fig. 6 (paper §5.2).

Each driver builds the stripped single-operator plan the paper obtained
via EXPLAIN, sweeps the paper's x-axis, and returns a
:class:`~repro.bench.harness.Series` of simulated milliseconds per
configuration.  Synthetic columns are uniform (paper §5.2); sizes are
nominal megabytes backed by proportionally smaller arrays.
"""

from __future__ import annotations

import numpy as np

from ..monetdb.mal import MALBuilder
from ..monetdb.storage import Catalog
from .configs import ALL_LABELS
from .harness import BenchContext, Measurement, Series, uniform_column

#: The paper's input-size axis (MB).
SIZES_MB = (64, 128, 256, 512, 1024)
#: The paper's selectivity axis (%).
SELECTIVITIES = (15, 30, 45, 60, 75)
#: The paper's distinct-value axis.
GROUP_COUNTS = (10, 100, 1000, 10000)

_DOMAIN = 2**30


def _context(columns: dict[str, np.ndarray], scale: float,
             labels=ALL_LABELS) -> BenchContext:
    catalog = Catalog()
    catalog.create_table("t", columns)
    return BenchContext(catalog, data_scale=scale, labels=labels,
                        operator_timing=True)


def _series(name: str, x_label: str, labels) -> Series:
    return Series(name=name, x_label=x_label, labels=tuple(labels))


# ---------------------------------------------------------------------------
# Fig. 5(a)/(b): range selection
# ---------------------------------------------------------------------------

def _selection_plan(selectivity: float):
    builder = MALBuilder("micro_select")
    col = builder.bind("t", "a")
    hi = int(_DOMAIN * selectivity)
    cand = builder.emit(
        "algebra", "select", (col, None, 0, hi, True, False, False)
    )
    # return the cardinality: keeps Ocelot's bitmap internal (paper
    # §4.1.1) instead of materialising the oid list into the result set
    count = builder.emit("aggr", "count", (cand,))
    return builder.returns([("n", count)])


def selection_by_size(sizes=SIZES_MB, selectivity=0.05, labels=ALL_LABELS,
                      runs=10, actual_elems=1 << 21) -> Series:
    series = _series("fig5a_selection_size", "MB", labels)
    for size in sizes:
        values, scale = uniform_column(size, actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(
            Measurement(size, ctx.measure(_selection_plan(selectivity),
                                          runs=runs))
        )
    return series


def selection_by_selectivity(selectivities=SELECTIVITIES, size_mb=400,
                             labels=ALL_LABELS, runs=10,
                             actual_elems=1 << 21) -> Series:
    series = _series("fig5b_selection_selectivity", "sel%", labels)
    values, scale = uniform_column(size_mb, actual_elems=actual_elems)
    ctx = _context({"a": values}, scale, labels)
    for selectivity in selectivities:
        series.points.append(
            Measurement(
                selectivity,
                ctx.measure(_selection_plan(selectivity / 100.0), runs=runs),
            )
        )
    return series


# ---------------------------------------------------------------------------
# Fig. 5(c): left fetch join (two-column projection via row ids)
# ---------------------------------------------------------------------------

def fetchjoin_by_size(sizes=SIZES_MB, labels=ALL_LABELS, runs=10,
                      actual_elems=1 << 21) -> Series:
    series = _series("fig5c_fetchjoin", "MB", labels)
    builder = MALBuilder("micro_fetchjoin")
    a = builder.bind("t", "a")
    b = builder.bind("t", "b")
    oids = builder.emit("bat", "mirror", (a,))
    fetched = builder.emit("algebra", "projection", (oids, b))
    # return the cardinality only: §5.2 measurements exclude transfers
    count = builder.emit("aggr", "count", (fetched,))
    plan = builder.returns([("n", count)])
    for size in sizes:
        values, scale = uniform_column(size, actual_elems=actual_elems)
        rng = np.random.default_rng(3)
        other = rng.random(values.size).astype(np.float32)
        ctx = _context({"a": values, "b": other}, scale, labels)
        millis = {}
        for label in labels:
            seconds, _ = ctx.run_query(label, plan, runs=runs)
            if seconds is not None and label == "MP":
                # footnote 11: the final merge is excluded for MP
                seconds = ctx.trace_seconds(label, exclude_merge=True)
            millis[label] = None if seconds is None else seconds * 1e3
        series.points.append(Measurement(size, millis))
    return series


# ---------------------------------------------------------------------------
# Fig. 5(d): ungrouped aggregation (min)
# ---------------------------------------------------------------------------

def aggregation_by_size(sizes=SIZES_MB, labels=ALL_LABELS, runs=10,
                        actual_elems=1 << 21) -> Series:
    series = _series("fig5d_aggregation", "MB", labels)
    builder = MALBuilder("micro_agg")
    col = builder.bind("t", "a")
    low = builder.emit("aggr", "min", (col,))
    plan = builder.returns([("m", low)])
    for size in sizes:
        values, scale = uniform_column(size, actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(
            Measurement(size, ctx.measure(plan, runs=runs))
        )
    return series


# ---------------------------------------------------------------------------
# Fig. 5(e)/(f): parallel hash-table build
# ---------------------------------------------------------------------------

def _hashbuild_plan():
    builder = MALBuilder("micro_hash")
    col = builder.bind("t", "a")
    size = builder.emit("algebra", "hashbuild", (col,))
    return builder.returns([("m", size)])


def hash_build_by_size(sizes=SIZES_MB, distinct=100, labels=ALL_LABELS,
                       runs=10, actual_elems=1 << 21) -> Series:
    series = _series("fig5e_hash_build_size", "MB", labels)
    plan = _hashbuild_plan()
    for size in sizes:
        values, scale = uniform_column(size, distinct=distinct,
                                       actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(Measurement(size, ctx.measure(plan, runs=runs)))
    return series


def hash_build_by_groups(groups=GROUP_COUNTS, size_mb=400,
                         labels=ALL_LABELS, runs=10,
                         actual_elems=1 << 21) -> Series:
    series = _series("fig5f_hash_build_groups", "#groups", labels)
    plan = _hashbuild_plan()
    for count in groups:
        values, scale = uniform_column(size_mb, distinct=count,
                                       actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(Measurement(count, ctx.measure(plan, runs=runs)))
    return series


# ---------------------------------------------------------------------------
# Fig. 5(g)/(h): grouping
# ---------------------------------------------------------------------------

def _group_plan():
    builder = MALBuilder("micro_group")
    col = builder.bind("t", "a")
    gids, ngroups = builder.emit("group", "group", (col,), n_results=2)
    return builder.returns([("n", ngroups)])


def groupby_by_size(sizes=SIZES_MB, distinct=100, labels=ALL_LABELS,
                    runs=10, actual_elems=1 << 21) -> Series:
    series = _series("fig5g_groupby_size", "MB", labels)
    plan = _group_plan()
    for size in sizes:
        values, scale = uniform_column(size, distinct=distinct,
                                       actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(Measurement(size, ctx.measure(plan, runs=runs)))
    return series


def groupby_by_groups(groups=GROUP_COUNTS, size_mb=400, labels=ALL_LABELS,
                      runs=10, actual_elems=1 << 21) -> Series:
    series = _series("fig5h_groupby_groups", "#groups", labels)
    plan = _group_plan()
    for count in groups:
        values, scale = uniform_column(size_mb, distinct=count,
                                       actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(Measurement(count, ctx.measure(plan, runs=runs)))
    return series


# ---------------------------------------------------------------------------
# Fig. 5(i): PK-FK hash join, build excluded (footnote 12)
# ---------------------------------------------------------------------------

def hashjoin_by_size(sizes=SIZES_MB, build_keys=100, labels=ALL_LABELS,
                     runs=10, actual_elems=1 << 21) -> Series:
    series = _series("fig5i_hashjoin", "MB", labels)
    builder = MALBuilder("micro_hashjoin")
    probe = builder.bind("t", "fk")
    build = builder.bind("dim", "pk")
    lpos, rpos = builder.emit("algebra", "join", (probe, build), n_results=2)
    count = builder.emit("aggr", "count", (lpos,))
    plan = builder.returns([("n", count)])
    for size in sizes:
        fk, scale = uniform_column(size, distinct=build_keys,
                                   actual_elems=actual_elems)
        catalog = Catalog()
        catalog.create_table("t", {"fk": fk})
        catalog.create_table(
            "dim", {"pk": np.arange(build_keys, dtype=np.int32)}
        )
        ctx = BenchContext(catalog, data_scale=scale, labels=labels,
                           operator_timing=True)
        millis = {}
        for label in labels:
            seconds, _ = ctx.run_query(label, plan, runs=runs)
            if seconds is not None and label in ("MS", "MP"):
                # footnote 12: hash-table build time is excluded
                seconds = ctx.trace_seconds(label, exclude_serial=True)
            millis[label] = None if seconds is None else seconds * 1e3
        series.points.append(Measurement(size, millis))
    return series


# ---------------------------------------------------------------------------
# Fig. 8 (heterogeneous extension): grouped-aggregation partials
# ---------------------------------------------------------------------------

def grouped_aggregation_by_size(sizes=SIZES_MB, ngroups=256,
                                labels=ALL_LABELS, runs=10,
                                actual_elems=1 << 21) -> Series:
    """``aggr.subsum`` over a dense pre-grouped id column — the
    embarrassingly parallel aggregation the HET scheduler fans out
    across devices (per-device partials, host merge)."""
    series = _series("fig8_grouped_aggregation", "MB", labels)
    builder = MALBuilder("micro_gagg")
    vals = builder.bind("t", "v")
    gids = builder.bind("t", "g")
    sums = builder.emit("aggr", "subsum", (vals, gids, ngroups))
    count = builder.emit("aggr", "count", (sums,))
    plan = builder.returns([("n", count)])
    for size in sizes:
        values, scale = uniform_column(size, dtype=np.float32,
                                       actual_elems=actual_elems)
        rng = np.random.default_rng(13)
        groups = rng.integers(0, ngroups, values.size).astype(np.int32)
        ctx = _context({"v": values, "g": groups}, scale, labels)
        series.points.append(
            Measurement(size, ctx.measure(plan, runs=runs))
        )
    return series


# ---------------------------------------------------------------------------
# Fig. 6: sort
# ---------------------------------------------------------------------------

def sort_by_size(sizes=SIZES_MB, labels=ALL_LABELS, runs=10,
                 actual_elems=1 << 20) -> Series:
    series = _series("fig6_sort", "MB", labels)
    builder = MALBuilder("micro_sort")
    col = builder.bind("t", "a")
    sorted_col, order = builder.emit(
        "algebra", "sort", (col, False), n_results=2
    )
    count = builder.emit("aggr", "count", (order,))
    plan = builder.returns([("n", count)])
    for size in sizes:
        values, scale = uniform_column(size, actual_elems=actual_elems)
        ctx = _context({"a": values}, scale, labels)
        series.points.append(Measurement(size, ctx.measure(plan, runs=runs)))
    return series
