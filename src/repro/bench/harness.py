"""Benchmark harness: runs plans across configurations, paper-style.

Measurement protocol follows §5 of the paper:

* microbenchmarks: ten runs averaged, synthetic uniform data, GPU times
  exclude host<->device transfer (hot device cache, operator time only),
* TPC-H: average of five hot-cache runs — each query runs once unmeasured
  so base columns are device-cached, then measured runs still pay for
  uncached data and the result transfer,
* when the GPU runs out of device memory the harness records ``None``
  ("if a line ends midway, we reached the device memory limit").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..monetdb.interpreter import Backend, run_program
from ..monetdb.mal import MALProgram
from ..monetdb.storage import Catalog
from ..ocelot.memory import OcelotOOM
from .configs import ALL_LABELS, CONFIGS, EngineConfig


@dataclass
class Measurement:
    """Simulated milliseconds per configuration for one data point."""

    x: object                      # sweep coordinate (MB, groups, SF, ...)
    millis: dict = field(default_factory=dict)   # label -> float | None
    #: auxiliary per-point metrics beyond milliseconds (e.g. the shard
    #: engine's interconnect bytes per strategy); carried into the
    #: machine-readable benchmark report (``REPRO_BENCH_JSON``)
    extra: dict = field(default_factory=dict)

    def __getitem__(self, label: str):
        return self.millis[label]


@dataclass
class Series:
    """One figure: a sweep of measurements."""

    name: str
    x_label: str
    points: list[Measurement] = field(default_factory=list)
    labels: tuple = ALL_LABELS

    def column(self, label: str) -> list:
        return [p.millis.get(label) for p in self.points]

    def xs(self) -> list:
        return [p.x for p in self.points]


class BenchContext:
    """Catalog + per-configuration backend cache for one dataset."""

    def __init__(self, catalog: Catalog, data_scale: float = 1.0,
                 labels: tuple = ALL_LABELS, operator_timing: bool = False):
        self.catalog = catalog
        self.data_scale = data_scale
        self.labels = labels
        #: microbenchmark mode (paper §5.2): timings bracket the operator
        #: via mtime.msec(), excluding per-query SQL/framework overhead —
        #: unlike the §5.3 TPC-H timings from the SQL frontend.
        self.operator_timing = operator_timing
        self._backends: dict[str, Backend] = {}

    def backend(self, label: str) -> Backend:
        if label not in self._backends:
            self._backends[label] = CONFIGS[label].make(
                self.catalog, self.data_scale
            )
        return self._backends[label]

    def config(self, label: str) -> EngineConfig:
        return CONFIGS[label]

    # -- measurement ---------------------------------------------------------

    def run_query(self, label: str, program: MALProgram, runs: int = 5,
                  warmup: int = 1):
        """Average hot-cache simulated seconds; None on device OOM."""
        backend = self.backend(label)
        plan = self.config(label).plan(program)
        try:
            for _ in range(warmup):
                run_program(plan, backend)
            total = 0.0
            for _ in range(runs):
                result = run_program(plan, backend)
                overhead = (
                    backend.query_overhead_s() if self.operator_timing
                    else 0.0
                )
                total += max(result.elapsed - overhead, 0.0)
            return total / runs, result
        except OcelotOOM:
            return None, None

    def measure(self, program: MALProgram, runs: int = 5,
                warmup: int = 1) -> dict:
        """Run one plan on every configuration -> label -> millis."""
        out = {}
        for label in self.labels:
            seconds, _ = self.run_query(label, program, runs, warmup)
            out[label] = None if seconds is None else seconds * 1e3
        return out

    # -- cost-component exclusions (paper footnotes) ------------------------------

    def trace_seconds(self, label: str, *, exclude_serial: bool = False,
                      exclude_merge: bool = False) -> float:
        """Recompute the last query's time from the MonetDB trace,
        optionally excluding serial (hash-build) or merge components.

        Used by Fig. 5(c) (footnote 11: MP merge excluded) and
        Fig. 5(i) (footnote 12: hash-table build excluded)."""
        backend = self.backend(label)
        if not hasattr(backend, "trace"):
            raise TypeError(f"{label} has no cost trace")
        model = backend.model
        total = 0.0
        for cost, _seconds in backend.trace:
            work = (
                cost.work / model.par_speedup + model.par_op_overhead_s
                if backend.parallel
                else cost.work
            )
            serial = 0.0 if exclude_serial else cost.serial
            merge = (
                0.0
                if (exclude_merge or not backend.parallel)
                else model.merge(cost.merge_bytes)
            )
            total += work + serial + merge
        return total


def uniform_column(nominal_mb: float, *, distinct: int | None = None,
                   dtype=np.int32, actual_elems: int = 1 << 21,
                   seed: int = 11) -> tuple[np.ndarray, float]:
    """Synthetic uniform test column (paper §5.2).

    Returns ``(values, data_scale)`` where the array has
    ``min(actual_elems, nominal)`` elements standing for a
    ``nominal_mb`` MB column.
    """
    dtype = np.dtype(dtype)
    nominal_elems = int(nominal_mb * 1024 * 1024 / dtype.itemsize)
    actual = min(actual_elems, nominal_elems)
    rng = np.random.default_rng(seed)
    if distinct is not None:
        values = rng.integers(0, distinct, actual).astype(dtype)
    elif dtype.kind == "f":
        values = rng.random(actual).astype(dtype)
    else:
        values = rng.integers(0, 2**30, actual).astype(dtype)
    return values, nominal_elems / actual
