"""``repro.bench`` — the benchmark harness (S7): the five engine
configurations, microbenchmark and TPC-H drivers, and paper-style
reporting.  (Layer map: ARCHITECTURE.md; figure recipes: README.md.)"""

from .configs import ALL_LABELS, CONFIGS, EngineConfig
from .harness import BenchContext, Measurement, Series, uniform_column
from .report import (
    format_series,
    monotone_increasing,
    print_series,
    roughly_flat,
    speedup,
)

__all__ = [
    "ALL_LABELS",
    "BenchContext",
    "CONFIGS",
    "EngineConfig",
    "Measurement",
    "Series",
    "format_series",
    "monotone_increasing",
    "print_series",
    "roughly_flat",
    "speedup",
    "uniform_column",
]
