"""Plain-text reporting: print figures the way the paper tabulates them."""

from __future__ import annotations

from .harness import Series


def format_series(series: Series) -> str:
    """Render a series as an aligned table (None -> '-': device OOM)."""
    header = [series.x_label] + [str(label) for label in series.labels]
    rows = [header]
    for point in series.points:
        row = [str(point.x)]
        for label in series.labels:
            value = point.millis.get(label)
            row.append("-" if value is None else f"{value:.1f}")
        rows.append(row)
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = [
        "  ".join(cell.rjust(widths[i]) for i, cell in enumerate(row))
        for row in rows
    ]
    title = f"== {series.name} (simulated ms) =="
    return "\n".join([title] + lines)


def print_series(series: Series) -> None:
    print()
    print(format_series(series))


def speedup(series: Series, fast: str, slow: str, at=None) -> float:
    """Ratio slow/fast at coordinate ``at`` (default: last point)."""
    point = series.points[-1] if at is None else next(
        p for p in series.points if p.x == at
    )
    numerator, denominator = point.millis[slow], point.millis[fast]
    if numerator is None or denominator is None:
        raise ValueError(f"missing data at {point.x}")
    return numerator / denominator


def monotone_increasing(values, tolerance: float = 0.05) -> bool:
    """True when the sequence grows (within ``tolerance`` jitter)."""
    cleaned = [v for v in values if v is not None]
    return all(
        b >= a * (1 - tolerance) for a, b in zip(cleaned, cleaned[1:])
    )


def roughly_flat(values, ratio: float = 1.6) -> bool:
    """True when max/min stays below ``ratio`` (a 'flat' paper line)."""
    cleaned = [v for v in values if v is not None]
    return max(cleaned) / min(cleaned) <= ratio
