"""TPC-H benchmark drivers — Fig. 7(a)-(d) (paper §5.3).

Queries run through the SQL frontend, MonetDB's optimizer pipelines and
Ocelot's query rewriter, exactly as the paper describes; measurements are
hot-cache averages of five runs and include uncached-input and result
transfers for the GPU.
"""

from __future__ import annotations

from ..monetdb.storage import Catalog
from ..tpch.dbgen import TPCHData, generate
from ..tpch.queries import WORKLOAD
from ..tpch.workload import compile_query
from .configs import ALL_LABELS
from .harness import BenchContext, Measurement, Series


def tpch_context(sf: float, labels=ALL_LABELS,
                 data: TPCHData | None = None) -> BenchContext:
    if data is None:
        data = generate(sf=sf)
    catalog = Catalog()
    data.install(catalog)
    return BenchContext(catalog, data_scale=data.data_scale, labels=labels)


def tpch_queries(sf: float, labels=ALL_LABELS, queries=None,
                 runs: int = 5) -> Series:
    """One Fig. 7(a)/(b)/(c) panel: per-query runtimes at one SF."""
    series = Series(
        name=f"tpch_sf{sf}", x_label="query", labels=tuple(labels)
    )
    ctx = tpch_context(sf, labels)
    for query_id in queries or WORKLOAD:
        plan = compile_query(query_id)
        series.points.append(Measurement(query_id, ctx.measure(plan, runs=runs)))
    return series


def q1_scaling(scale_factors=(1, 2, 4, 8, 10), labels=ALL_LABELS,
               runs: int = 5) -> Series:
    """Fig. 7(d): Q1 runtime against the scale factor."""
    series = Series(name="fig7d_q1_scaling", x_label="SF",
                    labels=tuple(labels))
    plan = compile_query("Q1")
    for sf in scale_factors:
        ctx = tpch_context(sf, labels)
        series.points.append(Measurement(sf, ctx.measure(plan, runs=runs)))
    return series
