"""The paper's four configurations (§5.1) plus the HET extension.

=====  ==========================================================
MS     sequential MonetDB — single-core baseline
MP     parallel MonetDB — Mitosis + Dataflow hand-tuned parallelism
CPU    Ocelot on the (simulated) Intel Xeon through the Intel SDK
GPU    Ocelot on the (simulated) NVIDIA GTX 460
HET    heterogeneous scheduler owning CPU *and* GPU (§7 extension)
=====  ==========================================================

Each is registered as a (parameterless) family in the engine registry
(:mod:`repro.engines`); ``CONFIGS`` remains as the benchmarks' view of
the five legacy labels, resolved through that registry.  Composable
engines — the sharded multi-node engine (:mod:`repro.shard`) — register
alongside them and are addressed by spec strings like ``"SHARD:4xHET"``.
"""

from __future__ import annotations

from collections.abc import Mapping

from ..engines import (
    ADMISSION_PARAM,
    COMPRESSION_PARAM,
    FUSION_OFF,
    MORSEL_PARAM,
    OBS_SLOW_PARAM,
    TIMEOUT_PARAM,
    TRACE_PARAM,
    EngineConfig,
    EngineFamily,
    EngineSpec,
    default_registry,
    parse_admission_setting,
    parse_compression_setting,
    parse_morsel_setting,
    parse_slow_ms_setting,
    parse_timeout_setting,
    parse_trace_setting,
    register_engine,
)
from ..monetdb.backends import MonetDBParallel, MonetDBSequential
from ..ocelot.engine import OcelotBackend
from ..sched.backend import HeterogeneousBackend

__all__ = [
    "ALL_LABELS",
    "CONFIGS",
    "EngineConfig",
    "HET_LABELS",
]


def _simple_family(name: str, description: str, make, *, is_ocelot: bool,
                   pipelines_sessions: bool = False) -> EngineFamily:
    """A family resolving to one fixed configuration.

    Every family accepts the ``fusion=off`` flag (e.g.
    ``"CPU:fusion=off"``) for A/B comparison against the operator-fusion
    pass (see :mod:`repro.fuse`), the ``morsel=off`` / ``morsel=<rows>``
    parameter controlling morsel-driven execution (see
    :mod:`repro.morsel`), the ``compression=off|auto|dict|rle|for``
    parameter controlling compressed execution (see
    :mod:`repro.compress`), the serving-tier ``timeout=<s>`` /
    ``admission=<n>`` parameters (see :mod:`repro.serve`), and the
    observability ``trace=on|off`` / ``obs_slow_ms=<ms>`` parameters
    (see :mod:`repro.obs`)."""

    def configure(spec: EngineSpec, registry) -> EngineConfig:
        morsel, morsel_size = parse_morsel_setting(spec)
        return EngineConfig(
            label=name,
            make=make,
            is_ocelot=is_ocelot,
            description=description,
            pipelines_sessions=pipelines_sessions,
            fusion=FUSION_OFF not in spec.flags,
            morsel=morsel,
            morsel_size=morsel_size,
            timeout_s=parse_timeout_setting(spec),
            admission=parse_admission_setting(spec),
            compression=parse_compression_setting(spec),
            trace=parse_trace_setting(spec),
            obs_slow_ms=parse_slow_ms_setting(spec),
            spec=spec.canonical,
        )

    return EngineFamily(name=name, configure=configure,
                        description=description, syntax=name,
                        allowed_flags=frozenset({FUSION_OFF}),
                        allowed_params=frozenset({
                            ADMISSION_PARAM, COMPRESSION_PARAM,
                            MORSEL_PARAM, OBS_SLOW_PARAM,
                            TIMEOUT_PARAM, TRACE_PARAM,
                        }))


register_engine(_simple_family(
    "MS", "sequential MonetDB baseline (single core)",
    lambda cat, scale: MonetDBSequential(cat, data_scale=scale),
    is_ocelot=False,
))
register_engine(_simple_family(
    "MP", "parallel MonetDB (Mitosis + Dataflow, hand-tuned)",
    lambda cat, scale: MonetDBParallel(cat, data_scale=scale),
    is_ocelot=False,
))
register_engine(_simple_family(
    "CPU", "Ocelot on the simulated Intel Xeon (Intel SDK)",
    lambda cat, scale: OcelotBackend(cat, "cpu", data_scale=scale),
    is_ocelot=True,
))
register_engine(_simple_family(
    "GPU", "Ocelot on the simulated NVIDIA GTX 460",
    lambda cat, scale: OcelotBackend(cat, "gpu", data_scale=scale),
    is_ocelot=True,
))
register_engine(_simple_family(
    "HET", "heterogeneous scheduler owning CPU and GPU at once",
    lambda cat, scale: HeterogeneousBackend(cat, data_scale=scale),
    is_ocelot=True,
    pipelines_sessions=True,
))


class _RegistryView(Mapping):
    """Live, read-only view of the legacy labels over the registry.

    Kept so benchmark code (and downstream users) can keep writing
    ``CONFIGS[label]``; lookups resolve through the registry, so a
    family override via :func:`repro.register_engine` is visible here
    too.  The mapping contract is the legacy dict's: exactly the five
    paper labels (case-sensitive), ``KeyError`` on anything else.
    """

    _LABELS = ("MS", "MP", "CPU", "GPU", "HET")

    def __getitem__(self, label: str) -> EngineConfig:
        if label not in self._LABELS:
            raise KeyError(label)
        return default_registry.resolve(label)

    def __iter__(self):
        return iter(self._LABELS)

    def __len__(self) -> int:
        return len(self._LABELS)


CONFIGS: Mapping = _RegistryView()

#: the paper's figures sweep exactly the four §5.1 configurations; the
#: HET extension opts in per benchmark (fig. 8) via an explicit labels
#: tuple so the reproduced tables keep the paper's shape
ALL_LABELS = ("MS", "MP", "CPU", "GPU")
HET_LABELS = ALL_LABELS + ("HET",)

#: fig. 10c sweeps the sharded engine's join strategies on one engine
#: shape — only the join plan differs between the three specs
SHARD_JOIN_SPECS = (
    ("broadcast", "SHARD:4xMS,join=broadcast"),
    ("shuffle", "SHARD:4xMS"),
    ("co-located",
     "SHARD:4xMS,key=lineitem.l_orderkey,key=orders.o_orderkey"),
)
