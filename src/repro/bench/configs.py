"""The paper's four configurations (§5.1) plus the HET extension.

=====  ==========================================================
MS     sequential MonetDB — single-core baseline
MP     parallel MonetDB — Mitosis + Dataflow hand-tuned parallelism
CPU    Ocelot on the (simulated) Intel Xeon through the Intel SDK
GPU    Ocelot on the (simulated) NVIDIA GTX 460
HET    heterogeneous scheduler owning CPU *and* GPU (§7 extension)
=====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..monetdb.backends import MonetDBParallel, MonetDBSequential
from ..monetdb.interpreter import Backend
from ..monetdb.mal import MALProgram
from ..monetdb.storage import Catalog
from ..ocelot.engine import OcelotBackend
from ..ocelot.rewriter import rewrite_for_ocelot
from ..sched.backend import HeterogeneousBackend


@dataclass(frozen=True)
class EngineConfig:
    label: str
    make: Callable[[Catalog, float], Backend]
    is_ocelot: bool
    #: one-line description (README engine table, examples, tooling)
    description: str = ""
    #: whether the serve layer can overlap submitted queries on this
    #: engine's timelines (requires the HET pool's per-device queues;
    #: single-timeline engines execute ``submit`` FIFO)
    pipelines_sessions: bool = False

    def plan(self, program: MALProgram) -> MALProgram:
        """Optimizer pipeline for this configuration.

        Deterministic per (program, engine) — the serve layer's plan
        cache memoises its output keyed by SQL text, engine label and
        schema version (see :mod:`repro.serve.plancache`).
        """
        if self.is_ocelot:
            return rewrite_for_ocelot(program)
        return program


CONFIGS: dict[str, EngineConfig] = {
    "MS": EngineConfig(
        "MS", lambda cat, scale: MonetDBSequential(cat, data_scale=scale),
        is_ocelot=False,
        description="sequential MonetDB baseline (single core)",
    ),
    "MP": EngineConfig(
        "MP", lambda cat, scale: MonetDBParallel(cat, data_scale=scale),
        is_ocelot=False,
        description="parallel MonetDB (Mitosis + Dataflow, hand-tuned)",
    ),
    "CPU": EngineConfig(
        "CPU", lambda cat, scale: OcelotBackend(cat, "cpu", data_scale=scale),
        is_ocelot=True,
        description="Ocelot on the simulated Intel Xeon (Intel SDK)",
    ),
    "GPU": EngineConfig(
        "GPU", lambda cat, scale: OcelotBackend(cat, "gpu", data_scale=scale),
        is_ocelot=True,
        description="Ocelot on the simulated NVIDIA GTX 460",
    ),
    "HET": EngineConfig(
        "HET", lambda cat, scale: HeterogeneousBackend(cat, data_scale=scale),
        is_ocelot=True,
        description="heterogeneous scheduler owning CPU and GPU at once",
        pipelines_sessions=True,
    ),
}

#: the paper's figures sweep exactly the four §5.1 configurations; the
#: HET extension opts in per benchmark (fig. 8) via an explicit labels
#: tuple so the reproduced tables keep the paper's shape
ALL_LABELS = ("MS", "MP", "CPU", "GPU")
HET_LABELS = ALL_LABELS + ("HET",)
