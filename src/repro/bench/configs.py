"""The four evaluated configurations (paper §5.1).

=====  ==========================================================
MS     sequential MonetDB — single-core baseline
MP     parallel MonetDB — Mitosis + Dataflow hand-tuned parallelism
CPU    Ocelot on the (simulated) Intel Xeon through the Intel SDK
GPU    Ocelot on the (simulated) NVIDIA GTX 460
=====  ==========================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..monetdb.backends import MonetDBParallel, MonetDBSequential
from ..monetdb.interpreter import Backend
from ..monetdb.mal import MALProgram
from ..monetdb.storage import Catalog
from ..ocelot.engine import OcelotBackend
from ..ocelot.rewriter import rewrite_for_ocelot


@dataclass(frozen=True)
class EngineConfig:
    label: str
    make: Callable[[Catalog, float], Backend]
    is_ocelot: bool

    def plan(self, program: MALProgram) -> MALProgram:
        """Optimizer pipeline for this configuration."""
        if self.is_ocelot:
            return rewrite_for_ocelot(program)
        return program


CONFIGS: dict[str, EngineConfig] = {
    "MS": EngineConfig(
        "MS", lambda cat, scale: MonetDBSequential(cat, data_scale=scale),
        is_ocelot=False,
    ),
    "MP": EngineConfig(
        "MP", lambda cat, scale: MonetDBParallel(cat, data_scale=scale),
        is_ocelot=False,
    ),
    "CPU": EngineConfig(
        "CPU", lambda cat, scale: OcelotBackend(cat, "cpu", data_scale=scale),
        is_ocelot=True,
    ),
    "GPU": EngineConfig(
        "GPU", lambda cat, scale: OcelotBackend(cat, "gpu", data_scale=scale),
        is_ocelot=True,
    ),
}

ALL_LABELS = tuple(CONFIGS)
