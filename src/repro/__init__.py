"""repro — a reproduction of *Hardware-Oblivious Parallelism for
In-Memory Column-Stores* (Heimel et al., PVLDB 6(9), 2013: **Ocelot**).

One hardware-oblivious operator set, written against a (simulated) OpenCL
kernel programming model, integrated as drop-in MAL operators into a
MonetDB-style column-store, evaluated against sequential and parallel
MonetDB baselines on calibrated CPU/GPU device models.

Quick start::

    import repro

    db = repro.tpch_database(sf=1)
    for engine in ("MS", "MP", "CPU", "GPU"):
        result = db.execute(repro.tpch.WORKLOAD["Q6"], engine=engine)
        print(engine, result.columns["revenue"], f"{result.elapsed*1e3:.1f} ms")

See README.md for the quickstart and how to reproduce each figure, and
ARCHITECTURE.md for the layer map (sql -> monetdb/MAL -> ocelot -> cl
-> sched -> serve) and the lifecycle of a query on each engine.
"""

from . import (
    bench,
    cl,
    fuse,
    kernels,
    monetdb,
    obs,
    ocelot,
    serve,
    shard,
    sql,
    tpch,
)
from .api import CatalogSchema, Connection, Database, tpch_database
# NOTE: ``repro.engines`` is deliberately rebound from the submodule to
# the listing *function* — ``repro.engines()`` is the public registry
# listing; the module stays importable as ``repro.engines`` via the
# import system (sys.modules) for ``from repro.engines import ...``.
from .engines import (
    EngineSpecError,
    engine_table_markdown,
    engines,
    register_engine,
)
from .monetdb.interpreter import QueryResult

__version__ = "1.0.0"

__all__ = [
    "CatalogSchema",
    "Connection",
    "Database",
    "EngineSpecError",
    "QueryResult",
    "bench",
    "cl",
    "engine_table_markdown",
    "engines",
    "kernels",
    "monetdb",
    "obs",
    "ocelot",
    "register_engine",
    "serve",
    "shard",
    "sql",
    "tpch",
    "tpch_database",
]
