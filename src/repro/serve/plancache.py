"""The plan cache: memoised ``compile_sql`` -> rewrite -> placement.

Repeat queries are the common case in a serving system, and everything
between the SQL text and the first dispatched instruction is
deterministic here: parsing, lowering, the engine's optimizer pipeline
(the Ocelot rewriter), and — for the heterogeneous engine — the cost
placer's per-instruction decisions, which depend only on the measured
device characteristics and the (immutable) base data.  So the whole
front half of the query lifecycle is cacheable:

* **key** — ``(SQL text, canonical engine spec, program name, schema
  version, fusion switch, morsel switch, morsel size)``.  The engine
  component is :attr:`repro.engines.EngineConfig.spec` — e.g. ``"CPU"``
  or ``"SHARD:4xHET"`` — so differently-parameterized instances of one
  family never share plans; the fusion switch keeps plans compiled with
  the operator-fusion pass (:mod:`repro.fuse`) apart from
  ``fusion=off`` / ``REPRO_FUSION=off`` compilations of the same
  statement, and the morsel components do the same for the morsel pass
  (:mod:`repro.morsel`, ``morsel=off`` / ``REPRO_MORSEL``).
  The schema version is :attr:`repro.monetdb.storage.Catalog.version`,
  bumped on every DDL statement, so a ``CREATE``/``DROP`` implicitly
  invalidates every plan compiled against the old schema.
* **value** — the *rewritten* :class:`~repro.monetdb.mal.MALProgram`
  (plans are immutable and re-runnable), plus the backend's recorded
  decision sequence from the latest run, installed as a replay on the
  next one through the ``replays_placements`` protocol: the HET
  placer's per-instruction placements
  (:meth:`repro.sched.backend.HeterogeneousBackend.install_replay`)
  or the sharded engine's per-join-site strategies
  (co-located / shuffle / broadcast, see
  :meth:`repro.shard.backend.ShardedBackend._plan_join`) — a repeat
  query replays the chosen join strategy instead of re-planning, and a
  DDL-bumped schema version invalidates trace and plan together.
* **eviction** — least-recently-used beyond ``max_entries``; explicitly
  stale versions are purged (and counted) by :meth:`invalidate_schema`.

Counters live in :class:`CacheStats`, surfaced as
``Connection.plan_cache.stats``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from ..sql.lower import sql_cache_key

#: bound (value-substituted) programs kept per parameterised entry, so
#: repeat executions with the same argument values reuse the identical
#: program object instead of re-substituting
BOUND_PLANS_PER_ENTRY = 16


@dataclass
class CacheStats:
    """Hit/miss/invalidation counters for one :class:`PlanCache`.

    .. note:: superseded by the unified metrics registry — the same
       counters appear as ``plan_cache.hits`` / ``plan_cache.misses`` /
       ``plan_cache.invalidations`` / ``plan_cache.placement_reuses``
       in ``Connection.metrics.snapshot()``; this object stays as the
       live storage they read."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0
    #: placer decisions replayed from a cached trace instead of scored
    placement_reuses: int = 0

    def __str__(self) -> str:
        return (
            f"hits={self.hits} misses={self.misses} "
            f"invalidations={self.invalidations} "
            f"placement_reuses={self.placement_reuses}"
        )


@dataclass
class CachedPlan:
    """One memoised plan plus its latest placement trace."""

    key: tuple
    program: object                    # rewritten MALProgram
    #: [(function, Placement), ...] recorded by the HET backend on the
    #: most recent run of this plan; None until the plan first executes
    #: on the heterogeneous engine
    placements: list | None = None
    hits: int = 0
    #: bound-program LRU for parameterised plans: values tuple -> the
    #: executable program with those values substituted
    binds: OrderedDict = field(default_factory=OrderedDict)


class PlanCache:
    """LRU cache of compiled, rewritten, placement-annotated plans."""

    def __init__(self, catalog, max_entries: int = 256):
        self.catalog = catalog
        self.max_entries = max_entries
        self._entries: OrderedDict[tuple, CachedPlan] = OrderedDict()
        #: (template, schema version) pairs whose parameterised form
        #: cannot compile (the plan needs the concrete value); those
        #: statements fall back to literal-text compilation
        self._no_param: set = set()
        self.stats = CacheStats()

    def __len__(self) -> int:
        return len(self._entries)

    def _key(self, sql: str, config, name: str) -> tuple:
        # the effective fusion and morsel switches (engine settings AND
        # the REPRO_FUSION / REPRO_MORSEL environment gates) are part of
        # the identity: a fused and an unfused — or a morselized and a
        # whole-column — compilation of one statement are different
        # plans, and flipping an environment variable mid-process must
        # not serve plans compiled under the other setting.  The morsel
        # component carries the effective size too, so retuning
        # ``REPRO_MORSEL=<rows>`` recompiles instead of reusing regions
        # cut at the old size.  The effective compression mode
        # (``compression=`` / REPRO_COMPRESSION) is part of the identity
        # for the same reason: compressed-execution plans carry
        # ``compress.*`` instructions that an ``off`` connection must
        # never be served.
        fused = bool(getattr(config, "fuses", False))
        morsels = bool(getattr(config, "morsels", False))
        morsel_size = (
            config.effective_morsel_size()
            if morsels and hasattr(config, "effective_morsel_size")
            else 0
        )
        compression = (
            config.effective_compression()
            if hasattr(config, "effective_compression")
            else "off"
        )
        return (sql_cache_key(sql), config.spec, name,
                self.catalog.version, fused, morsels, morsel_size,
                compression)

    def lookup(self, sql: str, config, schema, name: str = "query"
               ) -> CachedPlan:
        """The cached plan for ``sql`` under ``config``, compiling (and
        running the config's optimizer pipeline) on a miss."""
        key = self._key(sql, config, name)
        entry = self._entries.get(key)
        if entry is not None:
            self.stats.hits += 1
            entry.hits += 1
            self._entries.move_to_end(key)
            return entry
        from ..sql.lower import compile_sql

        self.stats.misses += 1
        program = config.plan(compile_sql(sql, schema, name=name))
        entry = CachedPlan(key=key, program=program)
        self._entries[key] = entry
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return entry

    def prepare(self, sql: str, config, schema, name: str = "query"
                ) -> "tuple[CachedPlan, object]":
        """Parameterised lookup: ``(entry, executable program)``.

        Literals in ``sql`` are normalised into bind parameters first,
        so every literal variation of one query shape shares a single
        cached template plan; the concrete values are substituted into
        a bound copy here (memoised per values tuple).  Statements
        whose template cannot compile — the plan genuinely depends on
        a literal's value — are negative-cached and served through the
        legacy literal-text path.
        """
        from ..sql.params import ParamBindError, bind_program, parameterise

        template, values = parameterise(sql)
        if not values:
            # zero-parameter statements still benefit: the template is
            # whitespace/comment-normalised, and the entry's program is
            # the executable program
            entry = self.lookup(template, config, schema, name=name)
            return entry, entry.program
        if (template, self.catalog.version) in self._no_param:
            entry = self.lookup(sql, config, schema, name=name)
            return entry, entry.program
        try:
            entry = self.lookup(template, config, schema, name=name)
        except ParamBindError:
            self._no_param.add((template, self.catalog.version))
            entry = self.lookup(sql, config, schema, name=name)
            return entry, entry.program
        bound = entry.binds.get(values)
        if bound is None:
            bound = bind_program(entry.program, values, schema)
            entry.binds[values] = bound
            while len(entry.binds) > BOUND_PLANS_PER_ENTRY:
                entry.binds.popitem(last=False)
        else:
            entry.binds.move_to_end(values)
        return entry, bound

    def invalidate_placements(self, engine_spec: str) -> int:
        """Eagerly purge one engine's entries on a topology change.

        A shard promotion or a committed re-shard makes every memoised
        placement/join-strategy trace of that engine refer to a
        departed roster member.  The accompanying version bump already
        prevents stale *lookups*, but the stale entries — and their
        placement traces, which the retry path writes back into even
        mid-failover — must not linger until a lazy
        :meth:`invalidate_schema` sweep: the whole engine's entries are
        dropped the moment the topology moves (they are all unreachable
        under the bumped version anyway)."""
        stale = [
            key for key in self._entries if key[1] == engine_spec
        ]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def invalidate_schema(self) -> int:
        """Purge entries compiled against a stale schema version.

        Correctness never depends on this — stale versions can no longer
        be *looked up* because the key embeds the current version — but
        purging bounds memory and feeds the invalidation counter."""
        current = self.catalog.version
        stale = [k for k in self._entries if k[3] != current]
        for key in stale:
            del self._entries[key]
        self.stats.invalidations += len(stale)
        return len(stale)

    def clear(self) -> None:
        self._entries.clear()
        self._no_param.clear()
