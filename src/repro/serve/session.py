"""Async sessions: ``submit()`` futures over a fair round-robin scheduler.

One :class:`SessionScheduler` serves one :class:`~repro.api.Connection`.
``submit`` compiles (through the plan cache), opens a *session* — one
in-flight query with its own interpreter environment, its own
per-device timeline floors, and its own scheduling state — and returns
a :class:`QueryFuture`.  The scheduler then interleaves the in-flight
queries **one MAL instruction per turn, round-robin** (fairness: no
query can starve another, every in-flight query advances once per
round).

On the heterogeneous engine this pipelines for real: each instruction
is placed by the cost placer as usual, but cross-device sync points are
*session-scoped* (see :meth:`repro.cl.queue.CommandQueue
.advance_session_to`), so a query running on the GPU's queue and a
query running on the CPU's queue overlap in simulated time — N
independent queries finish in less wall-clock makespan than the same
queries run serially, while same-device work still serialises in-order
on the shared queue (contention stays real).  Engines with a single
timeline (MS/MP/CPU/GPU) accept ``submit`` too but execute FIFO, one
query at a time — there is no second device queue to overlap onto.

The scheduler is also the serving tier's **admission controller**:

* a per-connection concurrency cap (the engine spec's ``admission=``
  parameter) and an optional memory budget
  (:attr:`SessionScheduler.memory_budget`, bytes of estimated base-
  column footprint) hold excess submissions in a pending queue;
* queries that hit transient device memory pressure park and re-run
  serially after the batch, with **bounded** re-parks
  (:data:`MAX_PARKS`) so a persistently failing query terminates with
  its original error;
* while parked queries wait, *new* submissions are held back too — the
  retry queue drains first, so a steady arrival stream can no longer
  starve a parked query;
* transient node failures (:class:`~repro.serve.faults.TransientFault`)
  are reported to the backend's circuit breakers
  (``note_node_failure``): a tripped breaker takes the sick node out
  of service, every in-flight query is parked (its placement trace and
  partial state predate the topology change) and re-run against the
  healthy remainder;
* ``submit(timeout=...)`` sets a deadline in simulated seconds and
  :meth:`QueryFuture.cancel` withdraws a query — both enforced
  cooperatively at turn granularity (morsel-granular through
  ``ProgramRun.step`` on pipelined engines).

Execution is cooperative and single-threaded: ``QueryFuture.result()``
or ``SessionScheduler.drain()`` drive the interleaving.  Results are
isolated by construction (per-run variable environments; base columns
are immutable) — property-tested under device memory pressure in
``tests/property/test_serve_properties.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..monetdb.interpreter import ProgramRun, QueryResult
from ..ocelot.memory import OcelotOOM
from .faults import TransientFault
from .plancache import CachedPlan
from .resilience import CircuitOpen

#: how often one query may park (OOM or transient fault) before its
#: failure is surfaced instead of retried
MAX_PARKS = 3


class QueryTimeout(RuntimeError):
    """The query ran past its ``submit(timeout=...)`` deadline."""


class QueryCancelled(RuntimeError):
    """The query was withdrawn via :meth:`QueryFuture.cancel`."""


class QueryFuture:
    """Handle to one submitted query; resolves when the scheduler has
    run the query to completion."""

    def __init__(self, scheduler: "SessionScheduler", session: str,
                 name: str):
        self._scheduler = scheduler
        self.session = session
        self.name = name
        self.submit_epoch = 0.0
        self.completion_epoch: Optional[float] = None
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._done = False

    def done(self) -> bool:
        return self._done

    def result(self) -> QueryResult:
        """Drive the scheduler (cooperatively) until this query finished;
        returns its :class:`QueryResult` or re-raises its failure."""
        while not self._done:
            if not self._scheduler.step():
                raise RuntimeError(
                    f"session {self.session} never completed"
                )  # pragma: no cover - scheduler invariant
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The query's failure, if it has one (drives to completion)."""
        while not self._done:
            if not self._scheduler.step():  # pragma: no cover
                break
        return self._error

    def cancel(self) -> bool:
        """Withdraw the query; returns False when already finished.

        A pending (not yet admitted) query fails immediately; a running
        one fails with :class:`QueryCancelled` at its next turn."""
        if self._done:
            return False
        return self._scheduler.cancel(self)


@dataclass
class _InFlight:
    """One admitted query: its stepper, future and plan-cache entry."""

    session: str
    run: Optional[ProgramRun]
    future: QueryFuture
    entry: Optional[CachedPlan] = None
    steps: int = 0
    extra: dict = field(default_factory=dict)


class SessionScheduler:
    """Fair round-robin interleaving of in-flight queries."""

    def __init__(self, connection):
        self.connection = connection
        self.backend = connection.backend
        #: a declared backend capability (see the Backend protocol):
        #: engines with per-session timelines pipeline; single-timeline
        #: engines fall back to FIFO execution
        self.pipelined = self.backend.pipelines_sessions
        self._active: deque[_InFlight] = deque()
        #: queries that hit transient pressure or a node failure while
        #: interleaved; re-run one at a time once the batch drains
        self._retry: deque[_InFlight] = deque()
        #: admission control: submissions held back while the retry
        #: queue drains or the concurrency/memory limits are reached
        self._pending: deque[_InFlight] = deque()
        #: concurrency cap from the engine spec's ``admission=`` param
        #: (0 = unlimited)
        self.admission_limit = int(
            getattr(connection.config, "admission", 0) or 0
        )
        #: optional in-flight memory budget in estimated bytes of bound
        #: base columns (None = off); an over-budget query still runs
        #: once nothing else is in flight
        self.memory_budget: Optional[int] = None
        self._inflight_bytes = 0
        self._counter = 0
        #: (session, op) per executed instruction — fairness introspection
        self.turn_log: list[tuple[str, str]] = []
        self._batch_start: Optional[float] = None
        self._batch_end = 0.0
        self.last_batch_makespan: Optional[float] = None

    def __len__(self) -> int:
        return len(self._active)

    # -- admission ----------------------------------------------------------

    def submit(self, entry: CachedPlan, name: str = "query",
               timeout: Optional[float] = None,
               program=None) -> QueryFuture:
        """Admit one compiled plan as a new session; returns its future.

        ``program`` is the executable (parameter-bound) program; it
        defaults to the entry's template program.  ``timeout`` is a
        deadline in simulated seconds from admission."""
        self._counter += 1
        session = f"s{self._counter}"
        future = QueryFuture(self, session, name)
        flight = _InFlight(session, None, future, entry)
        flight.extra["program"] = (
            program if program is not None else entry.program
        )
        flight.extra["bytes"] = self._estimate_bytes(flight.extra["program"])
        if getattr(self.connection.config, "traces", False):
            from ..obs import Tracer

            flight.extra["tracer"] = Tracer(
                engine=self.connection.config.spec
                or self.connection.config.label,
            )
        if timeout is not None:
            flight.extra["timeout"] = float(timeout)
        if self._batch_start is None:
            self._batch_start = self._now()
            self._batch_end = self._batch_start
        if self._must_defer() or not self._admits(flight):
            future.submit_epoch = self._now()
            self._pending.append(flight)
        else:
            self._admit(flight)
        return future

    def _must_defer(self) -> bool:
        """New work waits while parked queries (which re-run solo) or
        earlier deferred submissions are owed the machine."""
        if self._retry or self._pending:
            return True
        return any(f.extra.get("retried") for f in self._active)

    def _admits(self, flight: _InFlight) -> bool:
        """Would admitting ``flight`` keep the concurrency and memory
        limits?  An empty machine admits anything (no deadlock on
        oversized queries)."""
        if not self._active:
            return True
        if self.admission_limit and len(self._active) >= self.admission_limit:
            return False
        if self.memory_budget is not None and (
            self._inflight_bytes + flight.extra.get("bytes", 0)
            > self.memory_budget
        ):
            return False
        return True

    def _admit(self, flight: _InFlight) -> None:
        backend = self.backend
        backend.query_boundary()
        try:
            backend.check_admission()
        except CircuitOpen as error:
            flight.future._error = error
            flight.future._done = True
            self._maybe_finish_batch()
            return
        if self.pipelined:
            flight.future.submit_epoch = backend.open_session(
                flight.session,
                replay=getattr(flight.entry, "placements", None),
            )
        else:
            flight.future.submit_epoch = self._now()
        if flight.extra.get("timeout") is not None:
            flight.extra["deadline"] = (
                flight.future.submit_epoch + flight.extra["timeout"]
            )
        flight.run = ProgramRun(flight.extra["program"], backend,
                                tracer=self._arm_tracer(flight))
        self._inflight_bytes += flight.extra.get("bytes", 0)
        self._active.append(flight)

    def _arm_tracer(self, flight: _InFlight):
        """Point the flight's tracer (if any) at the right simulated
        clock: the shared pool makespan when sessions pipeline (every
        flight's spans land on one global timeline, as in fig. 9), the
        backend's per-query clock on the FIFO path."""
        tracer = flight.extra.get("tracer")
        if tracer is not None:
            tracer.clock = (self.backend.pool.makespan if self.pipelined
                            else self.backend.elapsed_now)
        return tracer

    def _admit_pending(self) -> None:
        if self._retry or any(f.extra.get("retried") for f in self._active):
            return
        while self._pending and self._admits(self._pending[0]):
            self._admit(self._pending.popleft())

    def _estimate_bytes(self, program) -> int:
        """Estimated base-column footprint of one program: the summed
        byte size of every persistent column it binds (morsel regions
        included)."""
        from ..monetdb.mal import ColumnRef

        catalog = self.backend.catalog
        seen: set = set()
        total = 0

        def walk(instructions) -> None:
            nonlocal total
            for instruction in instructions:
                for arg in instruction.args:
                    members = getattr(arg, "members", None)
                    if members is not None:
                        walk(members)
                        continue
                    if not isinstance(arg, ColumnRef):
                        continue
                    key = (arg.table, arg.column)
                    if key in seen:
                        continue
                    seen.add(key)
                    try:
                        bat = catalog.bat(arg.table, arg.column)
                    except KeyError:
                        continue
                    total += int(bat.count) * int(bat.values.dtype.itemsize)

        walk(program.instructions)
        return total

    def _now(self) -> float:
        if self.pipelined:
            return self.backend.pool.makespan()
        return self._batch_end

    # -- cancellation / deadlines ---------------------------------------------

    def cancel(self, future: QueryFuture) -> bool:
        for flight in self._pending:
            if flight.future is future:
                self._pending.remove(flight)
                future._error = QueryCancelled(
                    f"query {future.name!r} cancelled before admission"
                )
                future._done = True
                self._maybe_finish_batch()
                return True
        for flight in list(self._active) + list(self._retry):
            if flight.future is future:
                flight.extra["cancelled"] = True
                return True
        return False

    def _past_deadline(self, flight: _InFlight) -> bool:
        deadline = flight.extra.get("deadline")
        if deadline is None:
            return False
        if not self.pipelined and flight.extra.get("fifo_started"):
            now = self._batch_end + self.backend.elapsed()
        else:
            now = self._now()
        return now > deadline

    # -- the scheduling loop ----------------------------------------------------

    def step(self) -> bool:
        """One fairness turn: advance the next in-flight query by one
        instruction (pipelined) or one whole query (FIFO engines).
        Returns False once nothing is in flight."""
        if not self._active and self._retry:
            self._readmit(self._retry.popleft())
        self._admit_pending()
        if not self._active:
            return False
        flight = self._active.popleft()
        if flight.extra.get("cancelled"):
            self._fail(flight, QueryCancelled(
                f"query {flight.future.name!r} cancelled"
            ))
            return True
        if self._past_deadline(flight):
            self._fail(flight, QueryTimeout(
                f"query {flight.future.name!r} exceeded its "
                f"{flight.extra['timeout']}s deadline"
            ))
            return True
        try:
            if self.pipelined:
                done = self._step_pipelined(flight)
            else:
                done = self._run_fifo(flight)
        except OcelotOOM as error:
            if flight.extra.get("parks", 0) < MAX_PARKS:
                # transient pressure from the *concurrent* working set:
                # park the query and re-run it serially after the batch
                self._park(flight)
            else:
                self._fail(flight, error)
            return True
        except TransientFault as error:
            self._on_transient(flight, error)
            return True
        except Exception as error:
            self._fail(flight, error)
            return True
        if not done:
            if self.pipelined:
                self._active.append(flight)
            else:
                # FIFO engines share one clock: a started query keeps
                # the head slot until it completes
                self._active.appendleft(flight)
        return True

    def drain(self) -> None:
        """Run every in-flight query to completion."""
        while self.step():
            pass

    # -- pipelined (heterogeneous) path ----------------------------------------

    def _step_pipelined(self, flight: _InFlight) -> bool:
        backend = self.backend
        backend.activate_session(flight.session)
        try:
            op = flight.run.next_op
            more = flight.run.step()
            flight.steps += 1
            self.turn_log.append((flight.session, op))
            if not more:
                self._complete_pipelined(flight)
                return True
            return False
        finally:
            backend.activate_session(None)

    def _complete_pipelined(self, flight: _InFlight) -> None:
        backend = self.backend
        backend.activate_session(flight.session)
        try:
            trace, replayed = backend.take_trace()
            if flight.entry is not None:
                flight.entry.placements = trace
                self.connection.plan_cache.stats.placement_reuses += replayed
        finally:
            backend.activate_session(None)
        completion = backend.close_session(flight.session)
        future = flight.future
        future.completion_epoch = completion
        result = flight.run.collect(completion - future.submit_epoch)
        self._resolve(flight, result, completion)

    # -- FIFO path (single-timeline engines) --------------------------------------

    def _run_fifo(self, flight: _InFlight) -> bool:
        backend = self.backend
        if flight.extra.get("deadline") is None:
            backend.begin()
            flight.run.run()
            self.turn_log.append((flight.session, "query"))
            return self._complete_fifo(flight)
        # with a deadline the query advances stepwise, so the timeout
        # check between turns sees the clock move mid-query
        if not flight.extra.get("fifo_started"):
            backend.begin()
            flight.extra["fifo_started"] = True
        op = flight.run.next_op
        more = flight.run.step()
        flight.steps += 1
        self.turn_log.append((flight.session, op))
        if more:
            return False
        flight.extra.pop("fifo_started", None)
        return self._complete_fifo(flight)

    def _complete_fifo(self, flight: _InFlight) -> bool:
        elapsed = self.backend.elapsed()
        self._batch_end += elapsed
        flight.future.completion_epoch = self._batch_end
        result = flight.run.collect(elapsed)
        self._resolve(flight, result, self._batch_end)
        return True

    # -- transient failures: park / reroute / bounded retry ---------------------

    def _recycle_partial(self, flight: _InFlight) -> None:
        """Release a half-executed query's device intermediates (the
        backend's ``end_of_query`` decides what recycling means for its
        value model and skips base columns itself)."""
        self.backend.end_of_query(list(flight.run.env.values()))

    def _on_transient(self, flight: _InFlight, error: Exception) -> None:
        """A node-level failure: consult the breaker board and either
        retry, re-route around the tripped node, or give up."""
        if flight.entry is not None:
            flight.entry.placements = None
        action = self.backend.note_node_failure(error)
        if action == "fail" or flight.extra.get("parks", 0) >= MAX_PARKS:
            self._fail(flight, error)
            return
        self._park(flight)
        if action == "rerouted":
            # the topology changed: every other in-flight query's
            # partial state and placements predate it — park them all
            # (their park doesn't count against their retry budget)
            while self._active:
                self._park(self._active.popleft(), count=False)

    def _park(self, flight: _InFlight, count: bool = True) -> None:
        if self.pipelined:
            self.backend.activate_session(None)
            self.backend.close_session(flight.session)
        elif flight.extra.pop("fifo_started", None):
            self._batch_end += self.backend.elapsed()
        self._recycle_partial(flight)
        self.turn_log.append((flight.session, "parked"))
        if count:
            flight.extra["parks"] = flight.extra.get("parks", 0) + 1
        flight.extra["retried"] = True
        self._inflight_bytes -= flight.extra.get("bytes", 0)
        self._retry.append(flight)

    def _readmit(self, flight: _InFlight) -> None:
        """Re-run a parked query alone (full device budget), with fresh
        placement scoring — the recorded trace predates the pressure or
        the topology change (``query_boundary`` applies any pending
        node exclusions before the session opens)."""
        backend = self.backend
        backend.query_boundary()
        self._counter += 1
        flight.session = f"s{self._counter}"
        flight.future.session = flight.session
        if self.pipelined:
            flight.future.submit_epoch = backend.open_session(
                flight.session, replay=None
            )
        else:
            flight.future.submit_epoch = self._now()
        flight.run = ProgramRun(flight.extra["program"], backend,
                                tracer=self._arm_tracer(flight))
        self._inflight_bytes += flight.extra.get("bytes", 0)
        self._active.append(flight)

    # -- completion bookkeeping ------------------------------------------------

    def _resolve(self, flight: _InFlight, result: QueryResult,
                 completion: float) -> None:
        flight.future._result = result
        flight.future._done = True
        self._inflight_bytes -= flight.extra.get("bytes", 0)
        self.backend.note_query_success()
        self.connection._record_query(flight.future.name, result.elapsed)
        self._batch_end = max(self._batch_end, completion)
        self._maybe_finish_batch()

    def _fail(self, flight: _InFlight, error: BaseException) -> None:
        if self.pipelined:
            self.backend.activate_session(None)
            self.backend.close_session(flight.session)
        elif flight.extra.pop("fifo_started", None):
            self._batch_end += self.backend.elapsed()
        # on every engine: a half-executed query's device intermediates
        # must not outlive it inside the long-lived cached connection
        self._recycle_partial(flight)
        self._inflight_bytes -= flight.extra.get("bytes", 0)
        flight.future._error = error
        flight.future._done = True
        self._maybe_finish_batch()

    def _maybe_finish_batch(self) -> None:
        if not self._active and not self._retry and not self._pending:
            self._finish_batch()

    def _finish_batch(self) -> None:
        """The queue drained: close out the batch's makespan accounting.

        This is also where a staged re-shard (or a deferred replica
        promotion) completes: in-flight queries executed against the
        old layout, and now that the batch — including any
        mid-migration :meth:`QueryFuture.cancel` — has drained, the
        remaining key ranges migrate and the new layout commits, so no
        partial layout survives the batch."""
        if self._batch_start is not None:
            self.last_batch_makespan = self._batch_end - self._batch_start
        self._batch_start = None
        backend = self.backend
        guard = 0
        while backend.topology_pending():
            backend.query_boundary()
            guard += 1
            if guard > 100_000:  # pragma: no cover - defensive bound
                break
