"""Async sessions: ``submit()`` futures over a fair round-robin scheduler.

One :class:`SessionScheduler` serves one :class:`~repro.api.Connection`.
``submit`` compiles (through the plan cache), opens a *session* — one
in-flight query with its own interpreter environment, its own
per-device timeline floors, and its own scheduling state — and returns
a :class:`QueryFuture`.  The scheduler then interleaves the in-flight
queries **one MAL instruction per turn, round-robin** (fairness: no
query can starve another, every in-flight query advances once per
round).

On the heterogeneous engine this pipelines for real: each instruction
is placed by the cost placer as usual, but cross-device sync points are
*session-scoped* (see :meth:`repro.cl.queue.CommandQueue
.advance_session_to`), so a query running on the GPU's queue and a
query running on the CPU's queue overlap in simulated time — N
independent queries finish in less wall-clock makespan than the same
queries run serially, while same-device work still serialises in-order
on the shared queue (contention stays real).  Engines with a single
timeline (MS/MP/CPU/GPU) accept ``submit`` too but execute FIFO, one
query at a time — there is no second device queue to overlap onto.

Execution is cooperative and single-threaded: ``QueryFuture.result()``
or ``SessionScheduler.drain()`` drive the interleaving.  Results are
isolated by construction (per-run variable environments; base columns
are immutable) — property-tested under device memory pressure in
``tests/property/test_serve_properties.py``.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Optional

from ..monetdb.interpreter import ProgramRun, QueryResult
from ..ocelot.memory import OcelotOOM
from .plancache import CachedPlan


class QueryFuture:
    """Handle to one submitted query; resolves when the scheduler has
    run the query to completion."""

    def __init__(self, scheduler: "SessionScheduler", session: str,
                 name: str):
        self._scheduler = scheduler
        self.session = session
        self.name = name
        self.submit_epoch = 0.0
        self.completion_epoch: Optional[float] = None
        self._result: Optional[QueryResult] = None
        self._error: Optional[BaseException] = None
        self._done = False

    def done(self) -> bool:
        return self._done

    def result(self) -> QueryResult:
        """Drive the scheduler (cooperatively) until this query finished;
        returns its :class:`QueryResult` or re-raises its failure."""
        while not self._done:
            if not self._scheduler.step():
                raise RuntimeError(
                    f"session {self.session} never completed"
                )  # pragma: no cover - scheduler invariant
        if self._error is not None:
            raise self._error
        return self._result

    def exception(self) -> Optional[BaseException]:
        """The query's failure, if it has one (drives to completion)."""
        while not self._done:
            if not self._scheduler.step():  # pragma: no cover
                break
        return self._error


@dataclass
class _InFlight:
    """One admitted query: its stepper, future and plan-cache entry."""

    session: str
    run: ProgramRun
    future: QueryFuture
    entry: Optional[CachedPlan] = None
    steps: int = 0
    extra: dict = field(default_factory=dict)


class SessionScheduler:
    """Fair round-robin interleaving of in-flight queries."""

    def __init__(self, connection):
        self.connection = connection
        self.backend = connection.backend
        #: a declared backend capability (see the Backend protocol):
        #: engines with per-session timelines pipeline; single-timeline
        #: engines fall back to FIFO execution
        self.pipelined = self.backend.pipelines_sessions
        self._active: deque[_InFlight] = deque()
        #: queries that hit transient device memory pressure while
        #: interleaved; re-run one at a time once the batch drains
        self._retry: deque[_InFlight] = deque()
        self._counter = 0
        #: (session, op) per executed instruction — fairness introspection
        self.turn_log: list[tuple[str, str]] = []
        self._batch_start: Optional[float] = None
        self._batch_end = 0.0
        self.last_batch_makespan: Optional[float] = None

    def __len__(self) -> int:
        return len(self._active)

    # -- admission ----------------------------------------------------------

    def submit(self, entry: CachedPlan, name: str = "query") -> QueryFuture:
        """Admit one compiled plan as a new session; returns its future."""
        self._counter += 1
        session = f"s{self._counter}"
        future = QueryFuture(self, session, name)
        if self._batch_start is None:
            self._batch_start = self._now()
            self._batch_end = self._batch_start
        if self.pipelined:
            future.submit_epoch = self.backend.open_session(
                session, replay=entry.placements
            )
        else:
            future.submit_epoch = self._now()
        run = ProgramRun(entry.program, self.backend)
        self._active.append(_InFlight(session, run, future, entry))
        return future

    def _now(self) -> float:
        if self.pipelined:
            return self.backend.pool.makespan()
        return self._batch_end

    # -- the scheduling loop ----------------------------------------------------

    def step(self) -> bool:
        """One fairness turn: advance the next in-flight query by one
        instruction (pipelined) or one whole query (FIFO engines).
        Returns False once nothing is in flight."""
        if not self._active and self._retry:
            self._readmit(self._retry.popleft())
        if not self._active:
            return False
        flight = self._active.popleft()
        try:
            if self.pipelined:
                done = self._step_pipelined(flight)
            else:
                done = self._run_fifo(flight)
        except OcelotOOM as error:
            if self.pipelined and not flight.extra.get("retried"):
                # transient pressure from the *concurrent* working set:
                # park the query and re-run it serially after the batch
                self._park_for_retry(flight)
            else:
                self._fail(flight, error)
            return True
        except Exception as error:
            self._fail(flight, error)
            return True
        if not done:
            self._active.append(flight)
        return True

    def drain(self) -> None:
        """Run every in-flight query to completion."""
        while self.step():
            pass

    # -- pipelined (heterogeneous) path ----------------------------------------

    def _step_pipelined(self, flight: _InFlight) -> bool:
        backend = self.backend
        backend.activate_session(flight.session)
        try:
            op = flight.run.next_op
            more = flight.run.step()
            flight.steps += 1
            self.turn_log.append((flight.session, op))
            if not more:
                self._complete_pipelined(flight)
                return True
            return False
        finally:
            backend.activate_session(None)

    def _complete_pipelined(self, flight: _InFlight) -> None:
        backend = self.backend
        backend.activate_session(flight.session)
        try:
            trace, replayed = backend.take_trace()
            if flight.entry is not None:
                flight.entry.placements = trace
                self.connection.plan_cache.stats.placement_reuses += replayed
        finally:
            backend.activate_session(None)
        completion = backend.close_session(flight.session)
        future = flight.future
        future.completion_epoch = completion
        result = flight.run.collect(completion - future.submit_epoch)
        self._resolve(flight, result, completion)

    # -- FIFO path (single-timeline engines) --------------------------------------

    def _run_fifo(self, flight: _InFlight) -> bool:
        backend = self.backend
        backend.begin()
        flight.run.run()
        self.turn_log.append((flight.session, "query"))
        elapsed = backend.elapsed()
        self._batch_end += elapsed
        flight.future.completion_epoch = self._batch_end
        result = flight.run.collect(elapsed)
        self._resolve(flight, result, self._batch_end)
        return True

    # -- transient-pressure retry ---------------------------------------------

    def _recycle_partial(self, flight: _InFlight) -> None:
        """Release a half-executed query's device intermediates (the
        backend's ``end_of_query`` decides what recycling means for its
        value model and skips base columns itself)."""
        self.backend.end_of_query(list(flight.run.env.values()))

    def _park_for_retry(self, flight: _InFlight) -> None:
        self.backend.activate_session(None)
        self.backend.close_session(flight.session)
        self._recycle_partial(flight)
        self.turn_log.append((flight.session, "parked"))
        self._retry.append(flight)

    def _readmit(self, flight: _InFlight) -> None:
        """Re-run a parked query alone (full device budget), with fresh
        placement scoring — the recorded trace predates the pressure."""
        self._counter += 1
        flight.session = f"s{self._counter}"
        flight.extra["retried"] = True
        flight.future.session = flight.session
        flight.future.submit_epoch = self.backend.open_session(
            flight.session, replay=None
        )
        flight.run = ProgramRun(flight.run.program, self.backend)
        self._active.append(flight)

    # -- completion bookkeeping ------------------------------------------------

    def _resolve(self, flight: _InFlight, result: QueryResult,
                 completion: float) -> None:
        flight.future._result = result
        flight.future._done = True
        self._batch_end = max(self._batch_end, completion)
        if not self._active and not self._retry:
            self._finish_batch()

    def _fail(self, flight: _InFlight, error: BaseException) -> None:
        if self.pipelined:
            self.backend.activate_session(None)
            self.backend.close_session(flight.session)
        # on every engine: a half-executed query's device intermediates
        # must not outlive it inside the long-lived cached connection
        self._recycle_partial(flight)
        flight.future._error = error
        flight.future._done = True
        if not self._active and not self._retry:
            self._finish_batch()

    def _finish_batch(self) -> None:
        """The queue drained: close out the batch's makespan accounting."""
        if self._batch_start is not None:
            self.last_batch_makespan = self._batch_end - self._batch_start
        self._batch_start = None
