"""Fault injection for the serving tier's resilience tests.

:class:`FaultyBackend` wraps any Backend and injects scheduled
exceptions at operator granularity: the wrapper counts every operator
execution and raises the scheduled error when the count matches.  The
``tests/faults/`` harness uses it to script OOMs, timeouts, and
node failures deterministically, and the differential suite asserts
query results are identical with and without the schedule.

:class:`TransientFault` is the retry-eligible error class the serving
layer understands: the scheduler and the synchronous execute path
consult the backend's circuit breakers (``note_node_failure``) and
retry or re-route instead of failing the query outright.
:class:`NodeFault` carries the identity of the failed node (a shard
index, a device index) so tiered backends can charge the right
breaker.
"""

from __future__ import annotations


class TransientFault(RuntimeError):
    """A retry-eligible failure (network blip, node hiccup)."""


class NodeFault(TransientFault):
    """A transient failure attributed to one node."""

    def __init__(self, message: str, node=None):
        super().__init__(message)
        self.node = node


class FaultyBackend:
    """A Backend proxy that injects scheduled failures.

    ``schedule`` maps a 1-based operator-execution count to the
    exception to raise (or a zero-argument factory producing one) when
    that many operators have run.  All other attribute access delegates
    to the wrapped backend, so the proxy is drop-in anywhere a Backend
    is expected::

        con.backend = FaultyBackend(con.backend, {5: OcelotOOM("boom")})
        con._scheduler = None          # rebuild over the new backend

    With ``node`` set, injected :class:`TransientFault` instances that
    do not already carry a node are re-raised as :class:`NodeFault`
    attributed to it (used when wrapping one shard's child backend).
    """

    def __init__(self, inner, schedule: dict | None = None, node=None):
        self.inner = inner
        self.schedule = dict(schedule or {})
        self.node = node
        self.ops_seen = 0
        #: [(count, op, error), ...] for every fault actually raised
        self.injected: list = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _raise_scheduled(self, op: str) -> None:
        self.ops_seen += 1
        error = self.schedule.get(self.ops_seen)
        if error is None:
            return
        if callable(error):
            error = error()
        if (self.node is not None and isinstance(error, TransientFault)
                and getattr(error, "node", None) is None):
            error = NodeFault(str(error), node=self.node)
        self.injected.append((self.ops_seen, op, error))
        raise error

    def resolve(self, op: str):
        fn = self.inner.resolve(op)

        def guarded(*args, **kwargs):
            self._raise_scheduled(op)
            return fn(*args, **kwargs)

        return guarded


def wrap_shard_child(backend, shard: int,
                     schedule: dict | None = None) -> FaultyBackend:
    """Wrap one child of a :class:`~repro.shard.backend.ShardedBackend`
    in a :class:`FaultyBackend` attributed to that shard, in place.

    Replaces the child in both the physical roster (``all_children``)
    and the active set (``children``), so injected faults carry the
    shard id and the breaker board can route around it.
    """
    child = backend.all_children[shard]
    faulty = FaultyBackend(child, schedule, node=shard)
    backend.all_children[shard] = faulty
    for index, active in enumerate(backend.children):
        if active is child:
            backend.children[index] = faulty
    return faulty
