"""Fault injection for the serving tier's resilience tests.

:class:`FaultyBackend` wraps any Backend and injects scheduled
exceptions at operator granularity: the wrapper counts every operator
execution and raises the scheduled error when the count matches.  The
``tests/faults/`` harness uses it to script OOMs, timeouts, and
node failures deterministically, and the differential suite asserts
query results are identical with and without the schedule.

:class:`TransientFault` is the retry-eligible error class the serving
layer understands: the scheduler and the synchronous execute path
consult the backend's circuit breakers (``note_node_failure``) and
retry or re-route instead of failing the query outright.
:class:`NodeFault` carries the identity of the failed node (a shard
index, a device index) so tiered backends can charge the right
breaker.  :class:`RetryableFault` refines it further: a blip brief
enough that the sharded fan-out site absorbs it with an in-place
retry (simulated backoff) *before* the breaker is ever charged —
schedules mix the two classes to script transient-vs-hard fault
sequences.
"""

from __future__ import annotations


class TransientFault(RuntimeError):
    """A retry-eligible failure (network blip, node hiccup)."""


class NodeFault(TransientFault):
    """A transient failure attributed to one node."""

    def __init__(self, message: str, node=None):
        super().__init__(message)
        self.node = node


class RetryableFault(NodeFault):
    """A blip the fan-out call site absorbs with an in-place retry.

    Distinguished from a *hard* :class:`NodeFault` by class: the
    sharded backend retries these (with simulated backoff) before the
    breaker sees anything; only a blip outliving the retry budget
    escalates to the breaker path like a hard fault."""


class FaultyBackend:
    """A Backend proxy that injects scheduled failures.

    ``schedule`` maps a 1-based operator-execution count to the
    exception to raise (or a zero-argument factory producing one) when
    that many operators have run.  All other attribute access delegates
    to the wrapped backend, so the proxy is drop-in anywhere a Backend
    is expected::

        con.backend = FaultyBackend(con.backend, {5: OcelotOOM("boom")})
        con._scheduler = None          # rebuild over the new backend

    With ``node`` set, injected :class:`TransientFault` instances that
    do not already carry a node are attributed to it — in place when
    the error is already a :class:`NodeFault` subclass (preserving
    e.g. :class:`RetryableFault`), by re-wrapping otherwise (used when
    wrapping one shard's child backend).

    ``always`` — an exception or factory — kills the node outright:
    every operator raises it until cleared (the chaos harness's
    kill/recover windows), independent of the counted schedule.
    """

    def __init__(self, inner, schedule: dict | None = None, node=None):
        self.inner = inner
        self.schedule = dict(schedule or {})
        self.node = node
        self.ops_seen = 0
        #: when set, every operator raises this (kill window)
        self.always = None
        #: [(count, op, error), ...] for every fault actually raised
        self.injected: list = []

    def __getattr__(self, name):
        return getattr(self.inner, name)

    def _raise_scheduled(self, op: str) -> None:
        self.ops_seen += 1
        error = self.always
        if error is None:
            error = self.schedule.get(self.ops_seen)
        if error is None:
            return
        if callable(error):
            error = error()
        if (self.node is not None and isinstance(error, TransientFault)
                and getattr(error, "node", None) is None):
            if isinstance(error, NodeFault):
                error.node = self.node
            else:
                error = NodeFault(str(error), node=self.node)
        self.injected.append((self.ops_seen, op, error))
        raise error

    def resolve(self, op: str):
        fn = self.inner.resolve(op)

        def guarded(*args, **kwargs):
            self._raise_scheduled(op)
            return fn(*args, **kwargs)

        return guarded


def _swap_child(backend, child, faulty) -> None:
    """Replace ``child`` with ``faulty`` wherever the sharded backend
    holds it (copy grid, physical roster, active set), so the wrap
    survives roster rebuilds after promotions and rotations."""
    for row in getattr(backend, "copies", []):
        for index, copy in enumerate(row):
            if copy is child:
                row[index] = faulty
    for index, entry in enumerate(backend.all_children):
        if entry is child:
            backend.all_children[index] = faulty
    for index, active in enumerate(backend.children):
        if active is child:
            backend.children[index] = faulty


def wrap_shard_child(backend, shard: int,
                     schedule: dict | None = None) -> FaultyBackend:
    """Wrap one child of a :class:`~repro.shard.backend.ShardedBackend`
    in a :class:`FaultyBackend` attributed to that shard, in place.

    Replaces the child in the copy grid, the physical roster
    (``all_children``) and the active set (``children``), so injected
    faults carry the shard id and the breaker board can route around
    it.
    """
    child = backend.all_children[shard]
    faulty = FaultyBackend(child, schedule, node=shard)
    _swap_child(backend, child, faulty)
    return faulty


def wrap_shard_node(backend, node: int,
                    schedule: dict | None = None) -> list:
    """Wrap every copy *hosted* on one physical node of a replicated
    :class:`~repro.shard.backend.ShardedBackend`, in place.

    Chained declustering puts copy ``k`` of slot ``s`` on node
    ``(s + k) % N``, so killing a node means failing several slots'
    copies at once; the returned wrappers all carry ``node`` so every
    injected fault charges that node's breaker.
    """
    n = len(backend.copies)
    wrapped = []
    for slot, row in enumerate(backend.copies):
        for k, child in enumerate(list(row)):
            if (slot + k) % n != node:
                continue
            faulty = FaultyBackend(child, schedule, node=node)
            _swap_child(backend, child, faulty)
            wrapped.append(faulty)
    return wrapped
