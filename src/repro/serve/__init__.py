"""``repro.serve`` — the pipelined query-serving layer.

The paper's engine executes one operator-at-a-time plan per query; this
package turns the stack into a *serving* system (ROADMAP north star:
heavy concurrent traffic) with two pieces, both documented end-to-end
in ARCHITECTURE.md:

* :class:`~repro.serve.plancache.PlanCache` — memoises the whole front
  half of a query's lifecycle: parse -> lower -> engine rewrite, plus
  the heterogeneous placer's per-instruction decisions, keyed by
  ``(SQL text, engine, schema version)``.  Repeat queries skip straight
  to dispatch; DDL bumps the schema version and invalidates.
* :class:`~repro.serve.session.SessionScheduler` — ``Connection
  .submit(sql)`` returns a :class:`~repro.serve.session.QueryFuture`;
  in-flight queries advance one MAL instruction per turn, round-robin,
  and on the HET engine their cross-device sync points are
  session-scoped, so independent queries overlap on the DevicePool's
  per-device timelines (``benchmarks/test_fig9_concurrency.py``).

Neither piece changes query *results* — only when work is (re)done and
how simulated timelines interleave; both are property-tested against
fresh serial execution.
"""

from .plancache import CachedPlan, CacheStats, PlanCache, sql_cache_key
from .session import QueryFuture, SessionScheduler

__all__ = [
    "CachedPlan",
    "CacheStats",
    "PlanCache",
    "QueryFuture",
    "SessionScheduler",
    "sql_cache_key",
]
