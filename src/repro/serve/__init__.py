"""``repro.serve`` — the pipelined query-serving layer.

The paper's engine executes one operator-at-a-time plan per query; this
package turns the stack into a *serving* system (ROADMAP north star:
heavy concurrent traffic) with two pieces, both documented end-to-end
in ARCHITECTURE.md:

* :class:`~repro.serve.plancache.PlanCache` — memoises the whole front
  half of a query's lifecycle: parse -> lower -> engine rewrite, plus
  the heterogeneous placer's per-instruction decisions, keyed by
  ``(SQL text, engine, schema version)``.  Repeat queries skip straight
  to dispatch; DDL bumps the schema version and invalidates.
* :class:`~repro.serve.session.SessionScheduler` — ``Connection
  .submit(sql)`` returns a :class:`~repro.serve.session.QueryFuture`;
  in-flight queries advance one MAL instruction per turn, round-robin,
  and on the HET engine their cross-device sync points are
  session-scoped, so independent queries overlap on the DevicePool's
  per-device timelines (``benchmarks/test_fig9_concurrency.py``).

Since PR 7 the package is a full *front door* (ARCHITECTURE.md "Front
door"): statements are auto-parameterised before the cache lookup
(:mod:`repro.sql.params` — one template plan per query shape, values
bound at execute), the scheduler runs admission control with bounded
OOM re-parks and deadlines/cancellation, and per-node circuit breakers
(:mod:`repro.serve.resilience`) trip on repeated transient failures
and route reads around the sick shard or device — fault-injected
end-to-end by :mod:`repro.serve.faults` in ``tests/faults/``.

Neither piece changes query *results* — only when work is (re)done and
how simulated timelines interleave; both are property-tested against
fresh serial execution.
"""

from .faults import (
    FaultyBackend,
    NodeFault,
    RetryableFault,
    TransientFault,
)
from .plancache import CachedPlan, CacheStats, PlanCache, sql_cache_key
from .resilience import BreakerBoard, CircuitBreaker, CircuitOpen
from .session import (
    MAX_PARKS,
    QueryCancelled,
    QueryFuture,
    QueryTimeout,
    SessionScheduler,
)

__all__ = [
    "BreakerBoard",
    "CachedPlan",
    "CacheStats",
    "CircuitBreaker",
    "CircuitOpen",
    "FaultyBackend",
    "MAX_PARKS",
    "NodeFault",
    "PlanCache",
    "QueryCancelled",
    "QueryFuture",
    "QueryTimeout",
    "RetryableFault",
    "SessionScheduler",
    "TransientFault",
    "sql_cache_key",
]
