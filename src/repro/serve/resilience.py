"""Circuit breakers for the serving tier.

One :class:`CircuitBreaker` guards one *node* — a shard, a device, or
a whole single-node backend — and trips after repeated failures so the
serving layer stops sending work to it ("open"), probes it again after
a cooldown ("half-open"), and resumes once a probe succeeds
("closed").  A :class:`BreakerBoard` holds the breakers of one backend,
keyed by node identity.

Everything here is deterministic: the breaker clock is a query
counter, advanced by :meth:`BreakerBoard.tick` at query boundaries,
not wall time — the simulation has no real clock, and tests must be
able to script trip/recover sequences exactly.

This module is deliberately dependency-free (the Backend protocol in
``monetdb.interpreter`` imports it lazily).
"""

from __future__ import annotations


class CircuitOpen(RuntimeError):
    """The target node's breaker is open; the request was not admitted."""


#: consecutive failures that trip a closed breaker
DEFAULT_THRESHOLD = 3
#: query-boundary ticks an open breaker waits before allowing a probe
DEFAULT_COOLDOWN = 4


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure gate for one node."""

    def __init__(self, name, threshold: int = DEFAULT_THRESHOLD,
                 cooldown: int = DEFAULT_COOLDOWN):
        self.name = name
        self.threshold = threshold
        self.cooldown = cooldown
        self.state = "closed"
        self.failures = 0          # consecutive, reset on success
        self.trips = 0             # lifetime trip count
        self._clock = 0
        self._opened_at = 0
        self._backoff = cooldown

    def __repr__(self) -> str:
        return (f"CircuitBreaker({self.name!r}, {self.state}, "
                f"failures={self.failures})")

    def allow(self) -> bool:
        """Whether the node may receive work right now."""
        return self.state != "open"

    def tick(self) -> None:
        """Advance the breaker clock one query boundary; promote an
        open breaker to half-open (one probe allowed) after cooldown."""
        self._clock += 1
        if self.state == "open" and \
                self._clock - self._opened_at >= self._backoff:
            self.state = "half-open"
            self.failures = 0

    def record_failure(self) -> bool:
        """Count one failure; returns True iff the breaker just tripped."""
        self.failures += 1
        if self.state == "half-open":
            # the probe failed: back off twice as long before retrying
            self._trip(escalate=True)
            return True
        if self.state == "closed" and self.failures >= self.threshold:
            self._trip()
            return True
        return False

    def record_success(self) -> None:
        self.failures = 0
        if self.state == "half-open":
            self.state = "closed"
            self._backoff = self.cooldown

    def _trip(self, escalate: bool = False) -> None:
        self.state = "open"
        self.trips += 1
        self._opened_at = self._clock
        if escalate:
            self._backoff *= 2
        self.failures = 0


class BreakerBoard:
    """The circuit breakers of one backend, keyed by node identity."""

    def __init__(self, threshold: int = DEFAULT_THRESHOLD,
                 cooldown: int = DEFAULT_COOLDOWN):
        self.threshold = threshold
        self.cooldown = cooldown
        self._breakers: dict = {}

    def breaker(self, node) -> CircuitBreaker:
        found = self._breakers.get(node)
        if found is None:
            found = CircuitBreaker(node, self.threshold, self.cooldown)
            self._breakers[node] = found
        return found

    def __iter__(self):
        return iter(self._breakers.values())

    def __len__(self) -> int:
        return len(self._breakers)

    def tick(self) -> None:
        for breaker in self._breakers.values():
            breaker.tick()

    def record_success(self) -> None:
        """A query completed cleanly: every node that served it (i.e.
        every non-open breaker) counts a success."""
        for breaker in self._breakers.values():
            if breaker.state != "open":
                breaker.record_success()

    def open_nodes(self) -> list:
        return [b.name for b in self._breakers.values()
                if b.state == "open"]
