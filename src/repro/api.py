"""Public façade: a small embedded-database API over the whole stack.

(The layer map — what sits between this module and the simulated
devices — is documented in ARCHITECTURE.md.)

    >>> import numpy as np
    >>> import repro
    >>> db = repro.Database()
    >>> db.create_table("points", {
    ...     "x": np.array([0, 1, 0, 1], dtype=np.int32),
    ...     "y": np.array([1.5, 2.0, 0.5, 1.0], dtype=np.float32),
    ... })
    >>> con = db.connect("CPU")
    >>> result = con.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")
    >>> result.column("total")
    array([2., 3.])

A :class:`Database` owns the catalog; :meth:`connect` opens a connection
bound to one of five engine configurations — the paper's four ("MS",
"MP", "CPU", "GPU") plus "HET", the heterogeneous scheduler that owns
*both* simulated devices and places every operator by measured device
characteristics and data gravity, splitting row-independent operators
across the devices (paper §7 future work).

``execute`` parses SQL, lowers it to MAL, applies the configuration's
optimizer pipeline (the Ocelot rewriter for CPU/GPU/HET) and interprets
the plan.  Compiled plans are memoised in a per-database *plan cache*
(:mod:`repro.serve`): repeating a statement skips parse, rewrite and —
on HET — per-instruction placement scoring, and the counters show it:

    >>> _ = con.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")
    >>> con.plan_cache.stats.hits >= 1
    True

``submit`` is the asynchronous variant: it returns a
:class:`~repro.serve.session.QueryFuture` served by a fair round-robin
session scheduler, which on the HET engine overlaps independent queries
across the device pool's per-device timelines:

    >>> f1 = con.submit("SELECT sum(y) AS s FROM points WHERE x = 0")
    >>> f2 = con.submit("SELECT sum(y) AS s FROM points WHERE x = 1")
    >>> float(f1.result().column("s")[0]), float(f2.result().column("s")[0])
    (2.0, 3.0)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bench.configs import CONFIGS
from .monetdb.interpreter import QueryResult, run_program
from .monetdb.mal import MALProgram
from .monetdb.storage import Catalog
from .serve.plancache import PlanCache
from .serve.session import QueryFuture, SessionScheduler
from .sql.lower import SchemaProvider, compile_sql


class CatalogSchema(SchemaProvider):
    """Schema provider over a live catalog, with optional dictionaries."""

    def __init__(self, catalog: Catalog,
                 dictionaries: Optional[dict] = None):
        self.catalog = catalog
        #: (table, column) -> dictionary name, plus name -> values list
        self.column_dicts: dict[tuple, str] = {}
        self.dictionaries: dict[str, list] = dict(dictionaries or {})

    def has_table(self, table: str) -> bool:
        return self.catalog.has_table(table)

    def columns(self, table: str) -> list[str]:
        return self.catalog.columns(table)

    def dictionary(self, table: str, column: str):
        return self.column_dicts.get((table, column))

    def dictionary_code(self, dictionary: str, literal: str) -> int:
        try:
            return self.dictionaries[dictionary].index(literal)
        except (KeyError, ValueError):
            raise LookupError(
                f"literal {literal!r} not in dictionary {dictionary!r}"
            ) from None


class Connection:
    """One engine configuration bound to a database.

    The connection owns a live backend (device contexts, memory-manager
    caches, autotuned profiles) and shares the database's plan cache —
    both stay warm across queries, which is why connections are cached
    per engine on the :class:`Database` and should be reused.
    """

    def __init__(self, database: "Database", engine: str):
        if engine not in CONFIGS:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(CONFIGS)}"
            )
        self.database = database
        self.config = CONFIGS[engine]
        self.backend = self.config.make(
            database.catalog, database.data_scale
        )
        #: shared per-database cache of compiled/rewritten/placed plans
        self.plan_cache: PlanCache = database.plan_cache
        self._scheduler: Optional[SessionScheduler] = None

    @property
    def engine(self) -> str:
        return self.config.label

    # -- synchronous execution ----------------------------------------------

    def execute(self, sql: str, name: str = "query") -> QueryResult:
        """Parse, lower, optimize and run one SQL statement.

        Compilation is served from the plan cache when this SQL text ran
        before on this engine under the current schema version; on the
        heterogeneous engine the cached placement trace is replayed so
        repeat queries skip per-instruction scoring too.
        """
        entry = self.plan_cache.lookup(
            sql, self.config, self.database.schema, name=name
        )
        return self._run_cached(entry)

    def _run_cached(self, entry) -> QueryResult:
        backend = self.backend
        replayable = hasattr(backend, "install_replay")
        if replayable:
            backend.install_replay(entry.placements)
        result = run_program(entry.program, backend)
        if replayable:
            trace, replayed = backend.take_trace()
            entry.placements = trace
            self.plan_cache.stats.placement_reuses += replayed
        return result

    def run_plan(self, program: MALProgram) -> QueryResult:
        """Run an already-compiled MAL program (uncached path)."""
        plan = self.config.plan(program)
        return run_program(plan, self.backend)

    def explain(self, sql: str, name: str = "query") -> str:
        """The optimized MAL plan this connection would execute."""
        program = compile_sql(sql, self.database.schema, name=name)
        return self.config.plan(program).format()

    # -- asynchronous sessions ------------------------------------------------

    @property
    def scheduler(self) -> SessionScheduler:
        """The connection's session scheduler (created on first use)."""
        if self._scheduler is None:
            self._scheduler = SessionScheduler(self)
        return self._scheduler

    def submit(self, sql: str, name: str = "query") -> QueryFuture:
        """Admit one statement for pipelined execution; returns a future.

        In-flight queries advance one instruction per turn, round-robin.
        On the HET engine their simulated timelines overlap across the
        device pool (independent queries on different devices run
        concurrently); single-timeline engines execute FIFO.  Drive the
        scheduler with :meth:`drain` or by awaiting any future's
        ``result()``.
        """
        entry = self.plan_cache.lookup(
            sql, self.config, self.database.schema, name=name
        )
        return self.scheduler.submit(entry, name=name)

    def drain(self) -> None:
        """Run every submitted query to completion."""
        if self._scheduler is not None:
            self._scheduler.drain()


class Database:
    """An in-memory column-store database (catalog + schema)."""

    def __init__(self, data_scale: float = 1.0):
        self.catalog = Catalog()
        self.schema = CatalogSchema(self.catalog)
        self.data_scale = float(data_scale)
        #: compiled plans shared by every connection, keyed by
        #: (SQL text, engine, schema version) — see :mod:`repro.serve`
        self.plan_cache = PlanCache(self.catalog)
        self._connections: dict[str, Connection] = {}

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: dict[str, np.ndarray],
                     dictionaries: Optional[dict[str, list[str]]] = None):
        """Register a table from numpy columns.

        ``dictionaries`` maps column names to string-value lists; such
        columns must contain int32 dictionary codes and become queryable
        with string equality literals.

        DDL bumps the catalog's schema version, so every cached plan
        compiled against the old schema is invalidated.
        """
        self.catalog.create_table(name, columns)
        for column, values in (dictionaries or {}).items():
            dict_name = f"{name}.{column}"
            self.schema.dictionaries[dict_name] = list(values)
            self.schema.column_dicts[(name, column)] = dict_name
        self.plan_cache.invalidate_schema()

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self.plan_cache.invalidate_schema()

    # -- connections -----------------------------------------------------------

    def connect(self, engine: str = "CPU") -> Connection:
        """The connection for one of the five configurations.

        ``"MS"``/``"MP"`` are the MonetDB baselines, ``"CPU"``/``"GPU"``
        run Ocelot on one simulated device, and ``"HET"`` schedules each
        query across the CPU *and* the GPU at once (cost-based placement
        plus partitioned fan-out; see :mod:`repro.sched`).

        Connections are cached per engine: repeated ``connect("HET")``
        returns the same object, so device probes run once and the
        backend's device caches stay warm across queries.
        """
        connection = self._connections.get(engine)
        if connection is None:
            connection = Connection(self, engine)
            self._connections[engine] = connection
        return connection

    def execute(self, sql: str, engine: str = "CPU") -> QueryResult:
        """One-shot convenience: cached connection + execute."""
        return self.connect(engine).execute(sql)


def tpch_database(sf: float = 1.0, seed: int = 7) -> Database:
    """A :class:`Database` pre-loaded with the mini-scale TPC-H instance
    (Appendix-A schema, nominal sizes matching the real scale factor)."""
    from .tpch.dbgen import generate
    from .tpch.schema import DICTIONARIES, TABLES

    data = generate(sf=sf, seed=seed)
    db = Database(data_scale=data.data_scale)
    for name, columns in data.tables.items():
        dictionaries = {}
        for column in TABLES[name].columns:
            if column.dictionary is not None:
                dictionaries[column.name] = DICTIONARIES.get(
                    column.dictionary, []
                )
        db.create_table(name, columns, dictionaries or None)
    return db
