"""Public façade: a small embedded-database API over the whole stack.

    >>> import repro
    >>> db = repro.Database()
    >>> db.create_table("points", {"x": xs, "y": ys})
    >>> result = db.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")
    >>> result.columns["total"]

A :class:`Database` owns the catalog; :meth:`connect` opens a connection
bound to one of five engine configurations — the paper's four ("MS",
"MP", "CPU", "GPU") plus "HET", the heterogeneous scheduler that owns
*both* simulated devices and places every operator by measured device
characteristics and data gravity, splitting row-independent operators
across the devices (paper §7 future work)::

    >>> con = db.connect("HET")
    >>> con.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")

``execute`` parses SQL, lowers it to MAL, applies the configuration's
optimizer pipeline (the Ocelot rewriter for CPU/GPU/HET) and interprets
the plan.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .bench.configs import CONFIGS
from .monetdb.interpreter import QueryResult, run_program
from .monetdb.mal import MALProgram
from .monetdb.storage import Catalog
from .sql.lower import SchemaProvider, compile_sql


class CatalogSchema(SchemaProvider):
    """Schema provider over a live catalog, with optional dictionaries."""

    def __init__(self, catalog: Catalog,
                 dictionaries: Optional[dict] = None):
        self.catalog = catalog
        #: (table, column) -> dictionary name, plus name -> values list
        self.column_dicts: dict[tuple, str] = {}
        self.dictionaries: dict[str, list] = dict(dictionaries or {})

    def has_table(self, table: str) -> bool:
        return self.catalog.has_table(table)

    def columns(self, table: str) -> list[str]:
        return self.catalog.columns(table)

    def dictionary(self, table: str, column: str):
        return self.column_dicts.get((table, column))

    def dictionary_code(self, dictionary: str, literal: str) -> int:
        try:
            return self.dictionaries[dictionary].index(literal)
        except (KeyError, ValueError):
            raise LookupError(
                f"literal {literal!r} not in dictionary {dictionary!r}"
            ) from None


class Connection:
    """One engine configuration bound to a database."""

    def __init__(self, database: "Database", engine: str):
        if engine not in CONFIGS:
            raise ValueError(
                f"unknown engine {engine!r}; choose from {sorted(CONFIGS)}"
            )
        self.database = database
        self.config = CONFIGS[engine]
        self.backend = self.config.make(
            database.catalog, database.data_scale
        )

    @property
    def engine(self) -> str:
        return self.config.label

    def execute(self, sql: str, name: str = "query") -> QueryResult:
        """Parse, lower, optimize and run one SQL statement."""
        program = compile_sql(sql, self.database.schema, name=name)
        return self.run_plan(program)

    def run_plan(self, program: MALProgram) -> QueryResult:
        plan = self.config.plan(program)
        return run_program(plan, self.backend)

    def explain(self, sql: str, name: str = "query") -> str:
        """The optimized MAL plan this connection would execute."""
        program = compile_sql(sql, self.database.schema, name=name)
        return self.config.plan(program).format()


class Database:
    """An in-memory column-store database (catalog + schema)."""

    def __init__(self, data_scale: float = 1.0):
        self.catalog = Catalog()
        self.schema = CatalogSchema(self.catalog)
        self.data_scale = float(data_scale)

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: dict[str, np.ndarray],
                     dictionaries: Optional[dict[str, list[str]]] = None):
        """Register a table from numpy columns.

        ``dictionaries`` maps column names to string-value lists; such
        columns must contain int32 dictionary codes and become queryable
        with string equality literals.
        """
        self.catalog.create_table(name, columns)
        for column, values in (dictionaries or {}).items():
            dict_name = f"{name}.{column}"
            self.schema.dictionaries[dict_name] = list(values)
            self.schema.column_dicts[(name, column)] = dict_name

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)

    # -- connections -----------------------------------------------------------

    def connect(self, engine: str = "CPU") -> Connection:
        """Open a connection on one of the five configurations.

        ``"MS"``/``"MP"`` are the MonetDB baselines, ``"CPU"``/``"GPU"``
        run Ocelot on one simulated device, and ``"HET"`` schedules each
        query across the CPU *and* the GPU at once (cost-based placement
        plus partitioned fan-out; see :mod:`repro.sched`).
        """
        return Connection(self, engine)

    def execute(self, sql: str, engine: str = "CPU") -> QueryResult:
        """One-shot convenience: connect + execute."""
        return self.connect(engine).execute(sql)


def tpch_database(sf: float = 1.0, seed: int = 7) -> Database:
    """A :class:`Database` pre-loaded with the mini-scale TPC-H instance
    (Appendix-A schema, nominal sizes matching the real scale factor)."""
    from .tpch.dbgen import generate
    from .tpch.schema import DICTIONARIES, TABLES

    data = generate(sf=sf, seed=seed)
    db = Database(data_scale=data.data_scale)
    for name, columns in data.tables.items():
        dictionaries = {}
        for column in TABLES[name].columns:
            if column.dictionary is not None:
                dictionaries[column.name] = DICTIONARIES.get(
                    column.dictionary, []
                )
        db.create_table(name, columns, dictionaries or None)
    return db
