"""Public façade: a small embedded-database API over the whole stack.

(The layer map — what sits between this module and the simulated
devices — is documented in ARCHITECTURE.md.)

    >>> import numpy as np
    >>> import repro
    >>> db = repro.Database()
    >>> db.create_table("points", {
    ...     "x": np.array([0, 1, 0, 1], dtype=np.int32),
    ...     "y": np.array([1.5, 2.0, 0.5, 1.0], dtype=np.float32),
    ... })
    >>> con = db.connect("CPU")
    >>> result = con.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")
    >>> result.column("total")
    array([2., 3.])

A :class:`Database` owns the catalog; :meth:`connect` takes an **engine
spec** resolved through the engine registry (:mod:`repro.engines`) —
the paper's four configurations ("MS", "MP", "CPU", "GPU"), "HET" (the
heterogeneous scheduler owning *both* simulated devices, paper §7
future work), and composite engines such as ``"SHARD:4xHET"`` (four
simulated nodes, each running HET, with tables partitioned across them
— :mod:`repro.shard`).  New engine families plug in with
:func:`repro.register_engine`; specs are case-insensitive and
canonicalised, and misspelled specs raise an error listing what is
registered.

``execute`` parses SQL, lowers it to MAL, applies the configuration's
optimizer pipeline (the Ocelot rewriter for CPU/GPU/HET) and interprets
the plan.  Compiled plans are memoised in a per-database *plan cache*
(:mod:`repro.serve`): repeating a statement skips parse, rewrite and —
on HET — per-instruction placement scoring, and the counters show it:

    >>> _ = con.execute("SELECT x, sum(y) AS total FROM points GROUP BY x")
    >>> con.plan_cache.stats.hits >= 1
    True

``submit`` is the asynchronous variant: it returns a
:class:`~repro.serve.session.QueryFuture` served by a fair round-robin
session scheduler, which on the HET engine overlaps independent queries
across the device pool's per-device timelines:

    >>> f1 = con.submit("SELECT sum(y) AS s FROM points WHERE x = 0")
    >>> f2 = con.submit("SELECT sum(y) AS s FROM points WHERE x = 1")
    >>> float(f1.result().column("s")[0]), float(f2.result().column("s")[0])
    (2.0, 3.0)
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from .engines import default_registry
from .monetdb.interpreter import QueryResult, run_program
from .monetdb.mal import MALProgram
from .monetdb.storage import Catalog
from .serve.plancache import PlanCache
from .serve.session import QueryFuture, SessionScheduler
from .sql.lower import SchemaProvider


class CatalogSchema(SchemaProvider):
    """Schema provider over a live catalog, with optional dictionaries."""

    def __init__(self, catalog: Catalog,
                 dictionaries: Optional[dict] = None):
        self.catalog = catalog
        #: (table, column) -> dictionary name, plus name -> values list
        self.column_dicts: dict[tuple, str] = {}
        self.dictionaries: dict[str, list] = dict(dictionaries or {})

    def has_table(self, table: str) -> bool:
        return self.catalog.has_table(table)

    def columns(self, table: str) -> list[str]:
        return self.catalog.columns(table)

    def dictionary(self, table: str, column: str):
        return self.column_dicts.get((table, column))

    def dictionary_code(self, dictionary: str, literal: str) -> int:
        try:
            return self.dictionaries[dictionary].index(literal)
        except (KeyError, ValueError):
            raise LookupError(
                f"literal {literal!r} not in dictionary {dictionary!r}"
            ) from None


class Connection:
    """One resolved engine spec bound to a database.

    The connection owns a live backend (device contexts, memory-manager
    caches, autotuned profiles) and shares the database's plan cache —
    both stay warm across queries, which is why connections are cached
    per canonical engine spec on the :class:`Database` and should be
    reused.  Connections are context managers; :meth:`close` drains any
    in-flight sessions and releases the backend's device buffers.
    """

    def __init__(self, database: "Database", engine: str):
        self.database = database
        self.config = default_registry.resolve(engine)
        self.backend = self.config.make(
            database.catalog, database.data_scale
        )
        #: shared per-database cache of compiled/rewritten/placed plans
        self.plan_cache: PlanCache = database.plan_cache
        self._scheduler: Optional[SessionScheduler] = None
        self._metrics = None
        self._closed = False
        # elastic engines announce topology changes (a replica
        # promotion, a committed re-shard); eagerly purge the cached
        # placement/join traces that reference the departed roster
        if hasattr(self.backend, "on_topology_change"):
            self.backend.on_topology_change = self._on_topology_change

    def _on_topology_change(self, backend) -> None:
        """The backend's roster moved: every memoised placement trace
        of this engine references a node that may no longer serve its
        slot, so they are dropped *now* — not lazily at the version
        sweep (see :meth:`PlanCache.invalidate_placements`)."""
        self.plan_cache.invalidate_placements(self.config.spec)

    @property
    def engine(self) -> str:
        """The canonical engine spec (e.g. ``"CPU"``, ``"SHARD:4xHET"``)."""
        return self.config.spec

    def _check_open(self) -> None:
        if self._closed:
            raise RuntimeError(
                f"connection {self.engine!r} is closed; reconnect with "
                f"Database.connect({self.engine!r})"
            )

    # -- synchronous execution ----------------------------------------------

    def execute(self, sql: str, name: str = "query",
                analyze: bool = False) -> QueryResult:
        """Parse, lower, optimize and run one SQL statement.

        Statements are auto-parameterised: literals are normalised into
        bind parameters before the plan-cache lookup, so every literal
        variation of one query shape is a cache hit against a single
        template plan (values are substituted into a bound copy at
        execute time).  Engines declaring the ``replays_placements``
        capability additionally replay the cached placement trace,
        skipping per-instruction scoring on repeat queries.

        ``analyze=True`` forces tracing on for this statement regardless
        of the spec's ``trace=`` setting: the returned result carries a
        :class:`~repro.obs.tracer.Tracer` on ``result.trace`` (per-span
        simulated timings, Chrome export, per-operator profile).
        """
        self._check_open()
        tracer = None
        if analyze or self.config.traces:
            from .obs import Tracer

            tracer = Tracer(engine=self.config.spec)
        cache_stats = self.plan_cache.stats
        misses_before = cache_stats.misses
        entry, program = self.plan_cache.prepare(
            sql, self.config, self.database.schema, name=name
        )
        if tracer is not None:
            tracer.event("plan_cache.lookup", cat="plancache",
                         hit=cache_stats.misses == misses_before,
                         query=name)
        return self._run_cached(entry, program, tracer=tracer, name=name)

    #: bounded node-failure retries per statement on the synchronous path
    MAX_TRANSIENT_RETRIES = 8

    def _run_cached(self, entry, program=None, tracer=None,
                    name: str = "query") -> QueryResult:
        from .serve.faults import TransientFault

        backend = self.backend
        if program is None:
            program = entry.program
        for attempt in range(self.MAX_TRANSIENT_RETRIES + 1):
            backend.query_boundary()
            backend.check_admission()
            if tracer is not None:
                tracer.event(
                    "admission", cat="admission", attempt=attempt,
                    breakers={b.name: b.state for b in backend.breakers()},
                )
            if backend.replays_placements:
                backend.install_replay(entry.placements)
            try:
                result = run_program(program, backend, tracer=tracer)
            except TransientFault as fault:
                # a node-level failure: consult the breaker board; a
                # tripped breaker reroutes reads around the sick node
                # (the placement trace is stale either way)
                entry.placements = None
                action = backend.note_node_failure(fault)
                if action == "fail" or attempt >= self.MAX_TRANSIENT_RETRIES:
                    raise
                continue
            if backend.replays_placements:
                trace, replayed = backend.take_trace()
                entry.placements = trace
                self.plan_cache.stats.placement_reuses += replayed
            backend.note_query_success()
            self._record_query(name, result.elapsed)
            return result

    def run_plan(self, program: MALProgram) -> QueryResult:
        """Run an already-compiled MAL program (uncached path)."""
        self._check_open()
        plan = self.config.plan(program)
        return run_program(plan, self.backend)

    def explain(self, sql: str, name: str = "query",
                no_fuse: bool = False, no_morsel: bool = False,
                analyze: bool = False) -> str:
        """The optimized MAL plan this connection would execute.

        Served through the plan cache — explaining a statement and then
        executing it compiles once, and ``explain`` after ``execute`` is
        a cache hit showing exactly the cached plan.  Fused regions
        render as ``fuse.pipe`` (``ocelot.pipe`` after the rewriter)
        with their expression trees inlined, and morsel regions as
        ``morsel.run`` with the region boundary (driving table, morsel
        size, member chain, escaping outputs) inlined.  Pass
        ``no_fuse=True`` / ``no_morsel=True`` for the comparison plans
        compiled with the respective pass disabled (cached separately,
        so the plans coexist).

        ``analyze=True`` is EXPLAIN ANALYZE: the statement actually
        *executes* (with tracing forced on) and the plan text is
        followed by the per-operator profile — simulated time, launches,
        rows, bytes and the devices/encodings each operator really used.
        The static ``# encodings:`` line renders the driver catalog's
        storage choices; the analyze profile's ``# encodings
        (observed):`` note reports what each shard read at runtime,
        which is the truth on partitioned tables.  ``no_fuse`` /
        ``no_morsel`` are ignored under ``analyze`` — the profile
        describes the plan this connection executes."""
        self._check_open()
        config = self.config
        if analyze:
            no_fuse = no_morsel = False
        if (no_fuse and config.fusion) or (no_morsel and config.morsel):
            from dataclasses import replace

            config = replace(
                config,
                fusion=config.fusion and not no_fuse,
                morsel=config.morsel and not no_morsel,
            )
        entry, program = self.plan_cache.prepare(
            sql, config, self.database.schema, name=name
        )
        text = program.format()
        encodings = self._plan_encodings(program)
        if encodings:
            text += "\n# encodings: " + ", ".join(encodings)
        if analyze:
            from .obs import render_profile

            result = self.execute(sql, name=name, analyze=True)
            text += "\n" + render_profile(result.trace)
        return text

    def _plan_encodings(self, program: MALProgram) -> list[str]:
        """``table.column=codec(payload)`` annotations for every bound
        column the catalog stores encoded (:mod:`repro.compress`)."""
        catalog = self.database.catalog
        seen: set[tuple[str, str]] = set()
        notes = []
        for instruction in program.instructions:
            if (instruction.module, instruction.function) != ("sql", "bind"):
                continue
            ref = instruction.args[0]
            key = (ref.table, ref.column)
            if key in seen:
                continue
            seen.add(key)
            try:
                bat = catalog.bat(ref.table, ref.column)
            except KeyError:
                continue
            encoding = getattr(bat, "encoding", None)
            if encoding is None:
                continue
            if encoding.kind == "dict":
                detail = str(encoding.codes.dtype)
            elif encoding.kind == "for":
                detail = str(encoding.deltas.dtype)
            else:
                detail = f"{encoding.run_values.size} runs"
            notes.append(
                f"{ref.table}.{ref.column}={encoding.kind}({detail})"
            )
        return notes

    # -- statistics --------------------------------------------------------------

    @property
    def interconnect(self):
        """Interconnect-traffic counters of multi-node engines.

        ``None`` on single-node engines.  On the sharded engine, a
        :class:`~repro.shard.backend.ShardTraffic` whose ``query`` field
        holds the last executed query's ``bytes_broadcast`` /
        ``bytes_shuffled`` / ``bytes_gathered`` and whose ``total``
        accumulates over the connection — so the join planner's traffic
        win (co-located and shuffled joins vs. broadcast-gather) is
        observable without instrumenting benchmark code."""
        return self.backend.interconnect_traffic()

    @property
    def compression(self):
        """Compression counters for the storage this connection reads.

        A :class:`~repro.compress.stats.CompressionStats`: encoded vs
        plain column counts, physical vs nominal stored bytes, and the
        decode counters the zero-decode tests assert on
        (``decode_events`` — full-column materialisations,
        ``partial_decodes`` — morsel/shard slices).  On the sharded
        engine the snapshot folds every shard catalog in."""
        return self.backend.compression_stats()

    @property
    def metrics(self):
        """The connection's unified metrics registry (created on first
        use): one dotted namespace over the plan cache, interconnect,
        compression, memory-manager, breaker and scheduler counters,
        with ``snapshot()`` / ``diff()`` and the slow-query log.  See
        :class:`~repro.obs.metrics.MetricsRegistry`."""
        if self._metrics is None:
            from .obs import MetricsRegistry

            self._metrics = MetricsRegistry(self)
        return self._metrics

    def _record_query(self, name: str, elapsed_s: float) -> None:
        """Count one completed query (and log it when it exceeds the
        spec's ``obs_slow_ms=`` threshold)."""
        self.metrics.record_query(name, elapsed_s)

    # -- asynchronous sessions ------------------------------------------------

    @property
    def scheduler(self) -> SessionScheduler:
        """The connection's session scheduler (created on first use)."""
        if self._scheduler is None:
            self._scheduler = SessionScheduler(self)
        return self._scheduler

    def submit(self, sql: str, name: str = "query",
               timeout: Optional[float] = None) -> QueryFuture:
        """Admit one statement for pipelined execution; returns a future.

        In-flight queries advance one instruction per turn, round-robin.
        On engines declaring ``pipelines_sessions`` (HET) their simulated
        timelines overlap across the device pool (independent queries on
        different devices run concurrently); single-timeline engines
        execute FIFO.  Drive the scheduler with :meth:`drain` or by
        awaiting any future's ``result()``.

        ``timeout`` is a deadline in simulated seconds: a query still
        running past it fails with
        :class:`~repro.serve.session.QueryTimeout` (checked
        cooperatively at turn granularity).  Defaults to the engine
        spec's ``timeout=`` parameter (0 = none).
        """
        self._check_open()
        entry, program = self.plan_cache.prepare(
            sql, self.config, self.database.schema, name=name
        )
        if timeout is None:
            spec_timeout = getattr(self.config, "timeout_s", 0.0)
            timeout = spec_timeout if spec_timeout > 0 else None
        return self.scheduler.submit(
            entry, name=name, timeout=timeout, program=program
        )

    def drain(self) -> None:
        """Run every submitted query to completion."""
        if self._scheduler is not None:
            self._scheduler.drain()

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        """Drain in-flight sessions and release the backend's resources.

        Idempotent.  The database drops its cached reference, so a later
        ``connect`` with the same spec opens a fresh backend."""
        if self._closed:
            return
        self.drain()
        self.backend.shutdown()
        self._closed = True
        cached = self.database._connections
        if cached.get(self.engine) is self:
            del cached[self.engine]

    @property
    def closed(self) -> bool:
        return self._closed

    def __enter__(self) -> "Connection":
        self._check_open()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


class Database:
    """An in-memory column-store database (catalog + schema)."""

    def __init__(self, data_scale: float = 1.0):
        self.catalog = Catalog()
        self.schema = CatalogSchema(self.catalog)
        self.data_scale = float(data_scale)
        #: compiled plans shared by every connection, keyed by
        #: (SQL text, engine, schema version) — see :mod:`repro.serve`
        self.plan_cache = PlanCache(self.catalog)
        self._connections: dict[str, Connection] = {}

    # -- DDL -------------------------------------------------------------

    def create_table(self, name: str, columns: dict[str, np.ndarray],
                     dictionaries: Optional[dict[str, list[str]]] = None):
        """Register a table from numpy columns.

        ``dictionaries`` maps column names to string-value lists; such
        columns must contain int32 dictionary codes and become queryable
        with string equality literals.

        DDL bumps the catalog's schema version, so every cached plan
        compiled against the old schema is invalidated, and every live
        backend is notified (the sharded engine re-partitions).
        """
        self.catalog.create_table(name, columns)
        for column, values in (dictionaries or {}).items():
            dict_name = f"{name}.{column}"
            self.schema.dictionaries[dict_name] = list(values)
            self.schema.column_dicts[(name, column)] = dict_name
        self._after_ddl()

    def drop_table(self, name: str) -> None:
        self.catalog.drop_table(name)
        self._after_ddl()

    def declare_shard_key(self, table: str, column: str,
                          domain: Optional[str] = None) -> None:
        """Declare ``table.column`` as the table's shard key.

        Sharded engines place the table's rows by key value; tables
        keyed in one *domain* (defaulting to the column name sans its
        table prefix, so ``lineitem.l_orderkey`` and
        ``orders.o_orderkey`` meet in ``"orderkey"``) co-partition, and
        equi-joins on their keys run shard-local with zero driver
        traffic (:mod:`repro.shard`).  Counts as DDL: cached plans
        invalidate and live sharded backends re-partition.
        """
        self.catalog.declare_shard_key(table, column, domain=domain)
        self._after_ddl()

    def _after_ddl(self) -> None:
        self.plan_cache.invalidate_schema()
        for connection in list(self._connections.values()):
            connection.backend.schema_changed()

    # -- elastic re-sharding -----------------------------------------------

    def add_shard(self) -> None:
        """Grow every live sharded connection's cluster by one node.

        The re-shard is **online**: the new layout is staged and key
        ranges migrate incrementally at query boundaries, so in-flight
        ``submit()`` batches drain against the old layout while new
        admissions route to the new one.  On an idle connection the
        migration is driven to completion before returning.
        """
        self._resize_shards(+1)

    def remove_shard(self) -> None:
        """Shrink every live sharded connection's cluster by one node.

        Online like :meth:`add_shard` — and cached plans whose
        placement traces reference the departing roster member are
        eagerly invalidated when the new layout commits."""
        self._resize_shards(-1)

    def _resize_shards(self, delta: int) -> None:
        resized = 0
        for connection in list(self._connections.values()):
            backend = connection.backend
            nodes = backend.cluster_nodes()
            if nodes is None:
                continue
            target = nodes + delta
            if target < 1:
                raise ValueError(
                    f"connection {connection.engine!r} cannot shrink "
                    f"below one node (currently {nodes})"
                )
            backend.request_resize(target)
            resized += 1
            scheduler = connection._scheduler
            idle = scheduler is None or (
                not scheduler._active and not scheduler._retry
                and not scheduler._pending
            )
            if idle:
                # nothing in flight: drive the staged migration to
                # completion here, one boundary's worth at a time
                guard = 0
                while backend.topology_pending():
                    backend.query_boundary()
                    guard += 1
                    if guard > 100_000:  # pragma: no cover - invariant
                        raise RuntimeError(
                            f"re-shard of {connection.engine!r} did "
                            f"not converge"
                        )
        if not resized:
            raise RuntimeError(
                "no live sharded connections to resize; connect a "
                "SHARD:<N>x<CHILD> engine first"
            )

    # -- connections -----------------------------------------------------------

    def connect(self, engine: str = "CPU") -> Connection:
        """The connection for one engine spec (registry-resolved).

        ``"MS"``/``"MP"`` are the MonetDB baselines, ``"CPU"``/``"GPU"``
        run Ocelot on one simulated device, ``"HET"`` schedules each
        query across the CPU *and* the GPU at once (cost-based placement
        plus partitioned fan-out; see :mod:`repro.sched`), and
        ``"SHARD:<N>x<CHILD>"`` partitions tables across N simulated
        nodes each running CHILD (see :mod:`repro.shard`).  Anything
        registered via :func:`repro.register_engine` connects the same
        way; unknown specs raise listing the registered engines.

        Connections are cached per canonical spec: repeated
        ``connect("HET")`` — or ``connect("shard:4xhet")`` after
        ``connect("SHARD:4xHET")`` — returns the same object, so device
        probes run once and the backend's device caches stay warm
        across queries.
        """
        spec = default_registry.parse(engine).canonical
        connection = self._connections.get(spec)
        if connection is None:
            connection = Connection(self, spec)
            self._connections[spec] = connection
        return connection

    def execute(self, sql: str, engine: str = "CPU",
                name: str = "query") -> QueryResult:
        """One-shot convenience: cached connection + execute.

        ``name`` is forwarded to the plan cache (it names the compiled
        MAL program and is part of the cache key), matching
        :meth:`Connection.execute`.
        """
        return self.connect(engine).execute(sql, name=name)

    # -- lifecycle --------------------------------------------------------------

    def close(self) -> None:
        """Close every cached connection (drain sessions, free buffers)."""
        for connection in list(self._connections.values()):
            connection.close()
        self._connections.clear()

    def __enter__(self) -> "Database":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()


def tpch_database(sf: float = 1.0, seed: int = 7) -> Database:
    """A :class:`Database` pre-loaded with the mini-scale TPC-H instance
    (Appendix-A schema, nominal sizes matching the real scale factor)."""
    from .tpch.dbgen import generate
    from .tpch.schema import DICTIONARIES, TABLES

    data = generate(sf=sf, seed=seed)
    db = Database(data_scale=data.data_scale)
    for name, columns in data.tables.items():
        dictionaries = {}
        for column in TABLES[name].columns:
            if column.dictionary is not None:
                dictionaries[column.name] = DICTIONARIES.get(
                    column.dictionary, []
                )
        db.create_table(name, columns, dictionaries or None)
    return db
