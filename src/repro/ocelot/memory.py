"""Ocelot's Memory Manager (paper §3.3).

The storage interface between Ocelot and MonetDB: BATs live in host
memory, kernels operate on ``cl_mem`` buffers.  The Memory Manager

* keeps a **registry** of device buffers for BATs — requesting a BAT
  returns the cached buffer or allocates + transfers a new one (a
  zero-copy mapping on unified-memory devices like the CPU),
* acts as a **device cache**: on allocation failure it frees resources
  automatically — first evicting cached base-BAT copies in LRU order
  (their master lives in host memory), then *offloading* intermediate
  buffers to the host (they contain computed content and must be copied
  back when needed), giving preference to auxiliary structures such as
  hash tables before result buffers,
* uses **reference counting (pins)** so buffers in use are never evicted,
* **links result buffers to BATs** so operators can pass device references
  through MonetDB's BAT-based calling interface, and
* implements the **sync** hand-over: waiting on producer events and
  transferring/mapping the buffer back to the host (bitmap results are
  transparently materialised into oid lists first — done by the sync
  operator, which owns the kernels).

It also hosts the cache of built hash tables for base-table columns the
paper mentions in §5.2.6.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

import numpy as np

from ..cl import Buffer, CommandQueue, Context, OutOfDeviceMemory
from ..monetdb.bat import BAT
from ..monetdb.storage import Catalog

if TYPE_CHECKING:  # pragma: no cover
    pass


class BufferKind(enum.Enum):
    BASE = "base"        # device copy of a host-resident base BAT
    RESULT = "result"    # operator output linked to an Ocelot-owned BAT
    AUX = "aux"          # auxiliary structure (hash tables, ...)


class OcelotOOM(MemoryError):
    """Nothing evictable remains and the allocation still does not fit.

    This is what ends the GPU line in the paper's figures ("if a line for
    GPU measurements ends midway, we reached the device memory limit").
    """


@dataclass
class CacheEntry:
    entry_id: int
    kind: BufferKind
    tag: str
    buffer: Buffer | None = None          # None while offloaded / evicted
    host_copy: np.ndarray | None = None   # offloaded contents
    pins: int = 0
    last_use: int = 0
    bat_id: int | None = None             # for BASE entries
    bat: BAT | None = None                # the BAT carrying ``device_ref``
    free_pending: bool = False            # released while pinned elsewhere
    intermediate: bool = False            # counted in intermediates stats
    counted_nbytes: int = 0               # nominal bytes counted as such
    counted_nbytes_physical: int = 0      # raw in-process bytes ditto

    @property
    def resident(self) -> bool:
        return self.buffer is not None and not self.buffer.released

    @property
    def evictable(self) -> bool:
        return self.pins == 0 and self.resident


@dataclass
class MemoryManagerStats:
    """Per-device memory-manager counters.

    .. note:: superseded by the unified metrics registry — the same
       counters appear under ``mm.*`` in
       ``Connection.metrics.snapshot()``, summed over every device the
       engine owns; ``manager.stats`` stays as the live per-device
       storage the registry reads."""

    evictions: int = 0
    offloads: int = 0
    restores: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    hash_cache_hits: int = 0
    hash_cache_misses: int = 0
    #: result/aux buffers allocated while an operator scope was active —
    #: the per-operator materialisation traffic that operator fusion
    #: (repro.fuse) eliminates; base-column uploads are not counted
    intermediates_allocated: int = 0
    #: intermediate buffers freed again — anywhere between allocation
    #: and connection shutdown; the morsel executor's last-use release
    #: (repro.morsel) shows up here, as does within-scope scratch
    intermediates_freed: int = 0
    #: nominal bytes currently held by intermediate buffers, and the
    #: high-water mark — the "peak intermediate footprint" that
    #: morsel-driven execution keeps morsel-sized instead of
    #: column-sized
    intermediate_bytes: int = 0
    intermediate_bytes_peak: int = 0
    #: the same footprint in raw (in-process, unscaled) bytes.  Under
    #: compressed execution (repro.compress) operators run over narrow
    #: code payloads, so the physical footprint can sit well below what
    #: the same plan over plain columns would allocate — this pair is
    #: how that gap is observed
    intermediate_bytes_physical: int = 0
    intermediate_bytes_physical_peak: int = 0


class MemoryManager:
    """Device-buffer registry with LRU eviction and host offloading."""

    def __init__(self, context: Context, queue: CommandQueue, catalog: Catalog):
        self.context = context
        self.queue = queue
        self.catalog = catalog
        self._entries: dict[int, CacheEntry] = {}
        self._bat_entries: dict[int, int] = {}       # bat_id -> entry_id
        self._buffer_entries: dict[int, int] = {}    # buffer_id -> entry_id
        self._hash_cache: dict[tuple, dict] = {}     # base-BAT hash tables
        self._ids = itertools.count(1)
        self._use_clock = itertools.count(1)
        self.stats = MemoryManagerStats()
        #: buffers auto-pinned for the duration of the running operator
        self._scope_stack: list[list[Buffer]] = []
        #: entry ids allocated inside each active operator scope (feeds
        #: the intermediates_allocated / intermediates_freed counters)
        self._scope_allocs: list[set[int]] = []
        catalog.on_delete(self._on_bat_deleted)

    # -- operator scopes (automatic reference counting, paper §3.3) -------

    class _OperatorScope:
        def __init__(self, manager: "MemoryManager"):
            self.manager = manager

        def __enter__(self):
            self.manager._scope_stack.append([])
            self.manager._scope_allocs.append(set())
            return self

        def __exit__(self, exc_type, exc, tb):
            # Teardown must not mask an exception already unwinding out of
            # the operator: unpin every scope pin first, remember the first
            # imbalance, and only raise it when the operator itself
            # succeeded.
            imbalance: RuntimeError | None = None
            scope = self.manager._scope_stack.pop()
            self.manager._scope_allocs.pop()
            for buffer in scope:
                try:
                    self.manager.unpin(buffer)
                except RuntimeError as err:
                    if imbalance is None:
                        imbalance = err
            if exc_type is not None:
                self.manager._release_orphans(scope)
            if imbalance is not None and exc_type is None:
                raise imbalance
            return False

    def operator_scope(self) -> "_OperatorScope":
        """Pin every buffer touched until exit — operators never lose
        their working set to the eviction policy mid-flight."""
        return MemoryManager._OperatorScope(self)

    def _release_orphans(self, buffers) -> None:
        """Free allocations of a *failed* operator that never became
        results: a scope buffer whose entry is still unlinked (no BAT)
        was created by the operator and cannot have escaped it, so after
        the exception nothing can ever reach it again."""
        for buffer in buffers:
            entry = self._entry_for_buffer(buffer)
            if (entry is not None and entry.pins == 0
                    and entry.kind is not BufferKind.BASE
                    and entry.bat is None and entry.bat_id is None):
                self._free_entry(entry)

    def _scope_pin(self, buffer: Buffer) -> None:
        if self._scope_stack:
            self.pin(buffer)
            self._scope_stack[-1].append(buffer)

    def scope_pin(self, buffer: Buffer) -> None:
        """Pin a cached buffer into the running operator's scope (cache
        hits hand out buffers that must survive subsequent allocations)."""
        self._scope_pin(buffer)

    # -- BAT <-> buffer registry -------------------------------------------------

    def buffer_for_bat(self, bat: BAT) -> Buffer:
        """Device buffer holding ``bat``'s tail, transferring if needed."""
        # Ocelot-owned BATs carry their buffer reference directly.
        if bat.device_ref is not None and not bat.device_ref.released:
            entry = self._entry_for_buffer(bat.device_ref)
            if entry is not None:
                self._touch(entry)
            self.stats.cache_hits += 1
            self._scope_pin(bat.device_ref)
            return bat.device_ref

        entry_id = self._bat_entries.get(bat.bat_id)
        if entry_id is not None:
            entry = self._entries[entry_id]
            if entry.resident:
                self._touch(entry)
                self.stats.cache_hits += 1
                self._scope_pin(entry.buffer)
                return entry.buffer
            # evicted base copy or offloaded result: restore below
            return self._restore(entry, bat)

        # First request: allocate and upload.
        self.stats.cache_misses += 1
        values = bat.peek_values()
        if values is None:
            raise OcelotOOM(
                f"BAT {bat.tag!r} has neither host values nor a device buffer"
            )
        buffer = self.allocate_like(values, BufferKind.BASE, tag=bat.tag)
        self.queue.enqueue_write(buffer, values)
        entry = self._entry_for_buffer(buffer)
        entry.bat_id = bat.bat_id
        entry.bat = bat
        self._bat_entries[bat.bat_id] = entry.entry_id
        return buffer

    def link_result(self, bat: BAT, buffer: Buffer) -> BAT:
        """Attach an operator's result buffer to a (new) BAT and hand the
        BAT to Ocelot (paper §3.3: operators return a newly created BAT
        linked with the generated result buffer)."""
        entry = self._entry_for_buffer(buffer)
        if entry is None:
            raise ValueError(f"buffer {buffer.tag!r} is not registry-managed")
        entry.bat_id = bat.bat_id
        entry.bat = bat
        self._bat_entries[bat.bat_id] = entry.entry_id
        bat.device_ref = buffer
        bat.give_to_ocelot()
        return bat

    # -- allocation with automatic freeing ----------------------------------------

    def allocate(self, shape, dtype, kind: BufferKind = BufferKind.RESULT,
                 tag: str = "", zeroed: bool = False) -> Buffer:
        """Allocate a device buffer, evicting/offloading until it fits."""
        dtype = np.dtype(dtype)
        maker = self.context.zeros if zeroed else self.context.empty
        while True:
            try:
                buffer = maker(shape, dtype, tag=tag)
                break
            except OutOfDeviceMemory as exc:
                if not self._free_some():
                    raise OcelotOOM(
                        f"cannot allocate {tag!r}: {exc}; nothing evictable"
                    ) from exc
        entry = CacheEntry(
            entry_id=next(self._ids), kind=kind, tag=tag, buffer=buffer,
            last_use=next(self._use_clock),
        )
        self._entries[entry.entry_id] = entry
        self._buffer_entries[buffer.buffer_id] = entry.entry_id
        if self._scope_allocs and kind is not BufferKind.BASE:
            # an operator allocated working storage: this is exactly the
            # per-operator materialisation traffic fusion eliminates
            # (and morsel-driven execution keeps morsel-sized)
            self.stats.intermediates_allocated += 1
            self._scope_allocs[-1].add(entry.entry_id)
            entry.intermediate = True
            entry.counted_nbytes = buffer.nominal_nbytes
            entry.counted_nbytes_physical = buffer.nbytes
            self.stats.intermediate_bytes += entry.counted_nbytes
            if self.stats.intermediate_bytes > self.stats.intermediate_bytes_peak:
                self.stats.intermediate_bytes_peak = (
                    self.stats.intermediate_bytes
                )
            self.stats.intermediate_bytes_physical += (
                entry.counted_nbytes_physical
            )
            if (self.stats.intermediate_bytes_physical
                    > self.stats.intermediate_bytes_physical_peak):
                self.stats.intermediate_bytes_physical_peak = (
                    self.stats.intermediate_bytes_physical
                )
        self._scope_pin(buffer)
        return buffer

    def allocate_like(self, array: np.ndarray, kind: BufferKind,
                      tag: str = "") -> Buffer:
        return self.allocate(array.shape, array.dtype, kind, tag)

    def allocate_filled(self, array: np.ndarray, kind: BufferKind,
                        tag: str = "") -> Buffer:
        """Allocate and upload ``array`` (transfer charged)."""
        buffer = self.allocate_like(array, kind, tag)
        self.queue.enqueue_write(buffer, array)
        return buffer

    def release(self, buffer: Buffer) -> None:
        """Drop a temporary buffer from device and registry.

        Releasing only gives up the *caller's* interest: pins held by the
        current operator scope on behalf of the caller are unwound, but a
        buffer still pinned elsewhere (another operator's working set, an
        explicit :meth:`pinned` block) is never yanked out from under that
        user — the free is deferred until the last pin drops.
        """
        entry = self._entry_for_buffer(buffer)
        if entry is None:
            if not buffer.released:
                buffer.release()
            return
        if self._scope_stack:
            scope = self._scope_stack[-1]
            while buffer in scope and entry.pins > 0:
                scope.remove(buffer)
                entry.pins -= 1
        if entry.pins > 0:
            entry.free_pending = True
            return
        self._free_entry(entry)

    def shutdown(self) -> None:
        """Terminal release of every entry (connection close).

        Pins are moot — no operator can be in flight on a connection
        being closed — so everything is freed unconditionally, and the
        manager unsubscribes from the catalog's delete notifications so
        a closed connection leaves no dangling callbacks behind.
        """
        for entry in list(self._entries.values()):
            self._free_entry(entry)
        self._hash_cache.clear()
        self.catalog.off_delete(self._on_bat_deleted)

    def _free_entry(self, entry: CacheEntry) -> None:
        """Unconditionally drop an entry and its device storage."""
        if entry.intermediate:
            # counted at allocation; the free may happen inside the
            # allocating scope (scratch), at a later last use (liveness
            # release, morsel streaming) or at end of query
            entry.intermediate = False
            self.stats.intermediates_freed += 1
            self.stats.intermediate_bytes -= entry.counted_nbytes
            self.stats.intermediate_bytes_physical -= (
                entry.counted_nbytes_physical
            )
        for frame in self._scope_allocs:
            if entry.entry_id in frame:
                frame.discard(entry.entry_id)
                break
        buffer = entry.buffer
        self._entries.pop(entry.entry_id, None)
        if buffer is not None:
            self._buffer_entries.pop(buffer.buffer_id, None)
        if (entry.bat_id is not None
                and self._bat_entries.get(entry.bat_id) == entry.entry_id):
            self._bat_entries.pop(entry.bat_id, None)
        if buffer is not None and not buffer.released:
            buffer.release()

    # -- pinning (reference counting, paper §3.3) ------------------------------------

    def pin(self, buffer: Buffer) -> None:
        entry = self._entry_for_buffer(buffer)
        if entry is not None:
            entry.pins += 1

    def unpin(self, buffer: Buffer) -> None:
        entry = self._entry_for_buffer(buffer)
        if entry is not None:
            if entry.pins <= 0:
                raise RuntimeError(f"unbalanced unpin of {buffer.tag!r}")
            entry.pins -= 1
            if entry.pins == 0 and entry.free_pending:
                # a release() arrived while the buffer was pinned; the
                # deferred free happens now that the last user is gone
                self._free_entry(entry)

    class _Pinned:
        def __init__(self, manager: "MemoryManager", buffers):
            self.manager = manager
            self.buffers = [b for b in buffers if b is not None]

        def __enter__(self):
            for b in self.buffers:
                self.manager.pin(b)
            return self.buffers

        def __exit__(self, *exc):
            for b in self.buffers:
                self.manager.unpin(b)
            return False

    def pinned(self, *buffers) -> "_Pinned":
        """Context manager pinning ``buffers`` for the duration of an
        operator (in-use buffers are never evicted)."""
        return MemoryManager._Pinned(self, buffers)

    # -- eviction / offloading ---------------------------------------------------------

    def _free_some(self) -> bool:
        """Free one buffer; paper §3.3 policy.

        1. evict cached base-BAT copies (LRU) — master is in host memory;
        2. offload auxiliary structures (hash tables) to the host;
        3. offload result/intermediate buffers to the host.
        """
        for kinds, offload in (
            ((BufferKind.BASE,), False),
            ((BufferKind.AUX,), True),
            ((BufferKind.RESULT,), True),
        ):
            victim = self._lru_victim(kinds)
            if victim is not None:
                if offload:
                    self._offload(victim)
                else:
                    self._evict(victim)
                return True
        return False

    def _lru_victim(self, kinds) -> CacheEntry | None:
        candidates = [
            e for e in self._entries.values()
            if e.kind in kinds and e.evictable
        ]
        if not candidates:
            return None
        return min(candidates, key=lambda e: e.last_use)

    def _evict(self, entry: CacheEntry) -> None:
        """Drop a base-BAT device copy (host master still exists)."""
        self.stats.evictions += 1
        buffer = entry.buffer
        self._buffer_entries.pop(buffer.buffer_id, None)
        if entry.bat is not None and entry.bat.device_ref is buffer:
            # Clear the BAT's direct device_ref so the next request goes
            # through the registry and re-uploads instead of dereferencing
            # a released buffer.
            entry.bat.device_ref = None
        buffer.release()
        entry.buffer = None

    def _offload(self, entry: CacheEntry) -> None:
        """Move computed contents to the host, freeing device storage.

        The paper: "we cannot simply drop these buffers, as they contain
        computed content; we offload them to the host and copy them back
        when needed."
        """
        self.stats.offloads += 1
        buffer = entry.buffer
        host, _event = self.queue.enqueue_read(buffer)
        entry.host_copy = host
        self._buffer_entries.pop(buffer.buffer_id, None)
        # NB: the BAT's device_ref intentionally keeps pointing at the
        # released buffer — its metadata (dtype/shape) must stay readable
        # while offloaded (see Buffer), and _restore() re-links the ref.
        # Cross-device consumers resolve the true home through the
        # registry (DevicePool.home_of), never through a released ref.
        buffer.release()
        entry.buffer = None

    def _restore(self, entry: CacheEntry, bat: BAT | None = None) -> Buffer:
        """Bring an offloaded/evicted entry back onto the device."""
        if entry.host_copy is not None:
            array = entry.host_copy
            # only offloaded contents count as a *restore*: re-uploading an
            # evicted base copy is an ordinary cache miss (the master never
            # left host memory), which keeps restores <= offloads
            self.stats.restores += 1
        elif bat is not None and bat.peek_values() is not None:
            array = bat.peek_values()
        else:
            raise OcelotOOM(f"entry {entry.tag!r} has no restorable contents")
        self.stats.cache_misses += 1
        buffer = self.allocate_like(array, entry.kind, tag=entry.tag)
        self.queue.enqueue_write(buffer, array)
        # The fresh allocation created a new entry; merge bookkeeping.
        new_entry = self._entry_for_buffer(buffer)
        new_entry.bat_id = entry.bat_id
        new_entry.bat = entry.bat if bat is None else bat
        new_entry.host_copy = None
        if entry.bat_id is not None:
            self._bat_entries[entry.bat_id] = new_entry.entry_id
        if entry.intermediate:
            # the restored content is the *same* intermediate, not a new
            # one: hand the accounting to the fresh entry instead of
            # counting it twice (allocate() above may have re-counted it
            # when the restore ran inside an operator scope)
            entry.intermediate = False
            if new_entry.intermediate:
                self.stats.intermediates_allocated -= 1
                self.stats.intermediate_bytes -= new_entry.counted_nbytes
                self.stats.intermediate_bytes_physical -= (
                    new_entry.counted_nbytes_physical
                )
            new_entry.intermediate = True
            new_entry.counted_nbytes = entry.counted_nbytes
            new_entry.counted_nbytes_physical = (
                entry.counted_nbytes_physical
            )
        self._entries.pop(entry.entry_id, None)
        # linked (non-BASE) BATs carried a direct device_ref before the
        # offload; re-attach it.  BASE copies never hold one — a cached
        # base upload must not hand other managers a foreign reference.
        linked = new_entry.bat
        if linked is not None and entry.kind is not BufferKind.BASE:
            linked.device_ref = buffer
        elif bat is not None and bat.device_ref is not None:
            bat.device_ref = buffer
        return buffer

    # -- sync (ownership hand-over, paper §3.4) ----------------------------------------

    def sync_to_host(self, bat: BAT, buffer: Buffer) -> np.ndarray:
        """Wait for producers and transfer/map the buffer to the host.

        The device copy stays registered (and ``device_ref`` intact) so a
        later Ocelot operator reuses it as a cache hit; MonetDB reads the
        freshly transferred host tail.  Device buffers are allocated
        ``max(count, 1)`` elements, so the hand-over truncates to the
        BAT's logical count — an empty result must not gain a phantom
        row of padding."""
        host, _event = self.queue.enqueue_read(
            buffer, wait_for=buffer.dependencies_for_read()
        )
        self.queue.finish()
        if host.shape[0] > bat.count:
            host = host[:bat.count]
        bat.return_to_monetdb(host)
        return host

    # -- hash-table cache (paper §5.2.6) -------------------------------------------------

    def cached_hash_table(self, key: tuple) -> dict | None:
        table = self._hash_cache.get(key)
        if table is not None:
            live = all(
                not buf.released
                for buf in table.values()
                if isinstance(buf, Buffer)
            )
            if live:
                self.stats.hash_cache_hits += 1
                for buf in table.values():
                    if isinstance(buf, Buffer):
                        entry = self._entry_for_buffer(buf)
                        if entry is not None:
                            self._touch(entry)
                return table
            del self._hash_cache[key]
        self.stats.hash_cache_misses += 1
        return None

    def cache_hash_table(self, key: tuple, table: dict) -> None:
        self._hash_cache[key] = table

    # -- catalog callbacks (paper §4.3) ----------------------------------------------------

    def _on_bat_deleted(self, bat: BAT) -> None:
        """Remove buffers for deleted/recycled BATs from the device cache.

        Every device's manager receives this callback (they all subscribe
        to the shared catalog), so each one must only touch buffers of
        *its own* context: raw-releasing another device's buffer would
        leave that manager's registry pointing at a released buffer.
        """
        entry_id = self._bat_entries.pop(bat.bat_id, None)
        if entry_id is not None:
            entry = self._entries.get(entry_id)
            if entry is not None:
                # through _free_entry so intermediate accounting (bytes,
                # freed counter) is settled — this is the path every
                # catalog-recycle release takes
                self._free_entry(entry)
        ref = bat.device_ref
        if ref is not None and not ref.released \
                and ref.context is self.context:
            entry = self._entry_for_buffer(ref)
            if entry is not None:
                self._free_entry(entry)
            else:
                self._buffer_entries.pop(ref.buffer_id, None)
                ref.release()
            bat.device_ref = None
        # Operator-attached auxiliaries (e.g. a bitmap's materialised
        # oids) owned here; a foreign aux stays for its own manager.
        for key, aux in list(bat.aux.items()):
            if isinstance(aux, Buffer):
                if aux.released:
                    del bat.aux[key]
                elif aux.context is self.context:
                    self.release(aux)
                    del bat.aux[key]
        stale = [k for k, t in self._hash_cache.items() if k[0] == bat.bat_id]
        for k in stale:
            del self._hash_cache[k]

    # -- introspection ------------------------------------------------------------------------

    def has_entry(self, bat: BAT) -> bool:
        """Whether this manager tracks ``bat`` at all — resident,
        evicted *or* offloaded (the heterogeneous scheduler uses this to
        find the manager that can still produce the tail)."""
        entry_id = self._bat_entries.get(bat.bat_id)
        return entry_id is not None and entry_id in self._entries

    def has_resident(self, bat: BAT) -> bool:
        """Whether this manager holds a live device copy of ``bat``'s tail
        (used by the heterogeneous scheduler's data-gravity term)."""
        ref = bat.device_ref
        if ref is not None and not ref.released:
            if self._entry_for_buffer(ref) is not None:
                return True
        entry_id = self._bat_entries.get(bat.bat_id)
        if entry_id is None:
            return False
        entry = self._entries.get(entry_id)
        return entry is not None and entry.resident

    def _entry_for_buffer(self, buffer: Buffer) -> CacheEntry | None:
        entry_id = self._buffer_entries.get(buffer.buffer_id)
        return self._entries.get(entry_id) if entry_id is not None else None

    def _touch(self, entry: CacheEntry) -> None:
        entry.last_use = next(self._use_clock)

    def entries(self) -> Iterator[CacheEntry]:
        return iter(self._entries.values())

    @property
    def resident_bytes(self) -> int:
        return self.context.allocated_nominal

    @property
    def resident_bytes_physical(self) -> int:
        """Raw (unscaled) bytes of live registry entries — the actual
        in-process footprint, as opposed to the simulated device budget
        ``resident_bytes`` is charged against."""
        return sum(
            entry.buffer.nbytes
            for entry in self._entries.values()
            if entry.resident
        )
