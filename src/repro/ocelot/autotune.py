"""Device-profile auto-tuning (the paper's §7 future work, first item).

    "As a first step, we plan to provide a set of alternative algorithms
    for each operator, with the optimizer selecting the best-fitting
    algorithm for the given device.  This will require an automatic
    understanding of the performance characteristics of the given
    hardware, which could [...] be obtained by automatically generating
    a device profile from standardized benchmarks."

This module implements exactly that loop, hardware-obliviously: it runs
a fixed set of **micro-probes** (plain kernels from the library) on the
target device, derives an empirical :class:`DeviceCharacteristics` from
the observed (simulated) event timings — never reading the device's cost
model directly — and uses it to pick per-device algorithm parameters:

* the **radix width** of the sort (the paper hand-picked 8 bits on the
  CPU and 4 on the GPU, §5.2.7): wide radixes halve the number of passes
  but multiply the per-pass histogram/offsets volume by ``2^bits`` per
  partition — cheap launches and many partitions favour narrow radixes,
  expensive launches favour wide ones;
* the **grouping strategy** threshold is fixed (sorted inputs always use
  boundary detection), exposed here for the ablation benchmark.

``autotune(engine)`` probes the engine's device and installs the tuned
radix width (recompiling the kernel program with the new pre-processor
constant).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .. import cl
from ..kernels import KERNEL_LIBRARY
from .engine import OcelotEngine
from .memory import BufferKind

#: fixed probe size: big enough to expose bandwidth, small enough to be
#: instant (the paper's "standardized benchmarks")
_PROBE_ELEMS = 1 << 18

#: candidate radix widths for the sort
RADIX_CANDIDATES = (4, 8, 16)


@dataclass(frozen=True)
class DeviceCharacteristics:
    """Empirical profile measured by :func:`probe_device`.

    All quantities come from observed kernel timings, not from the
    device's declared parameters — the tuner stays hardware-oblivious.
    """

    device_name: str
    stream_gbs: float          # sequential throughput (ewise copy)
    gather_gbs: float          # data-dependent read throughput
    launch_overhead_s: float   # fixed cost of an (almost) empty launch
    atomic_contended_ns: float    # per-op cost, few distinct targets
    atomic_uncontended_ns: float  # per-op cost, many distinct targets
    partitions: int            # scheduling width (4 * nc * na)
    # queryable via clGetDeviceInfo (no benchmark needed):
    local_mem_bytes: int
    work_group_size: int
    # host link, measured by the transfer probes (the CPU's zero-copy
    # mapping shows up as an effectively infinite rate):
    transfer_gbs: float = float("inf")
    transfer_latency_s: float = 0.0
    # queryable via clGetDeviceInfo:
    global_mem_bytes: int = 0
    #: distinct-target count the *uncontended* atomic probe actually ran
    #: at (capacity-clamped on small devices; the interpolation anchor)
    atomic_probe_hi: float = 65536.0

    @property
    def contention_penalty(self) -> float:
        """How much this device hates contended atomics (CPU >> GPU)."""
        return self.atomic_contended_ns / max(self.atomic_uncontended_ns,
                                              1e-9)

    def atomic_ns(self, addresses: float) -> float:
        """Per-op atomic cost at a given distinct-target count,
        log-interpolated between the two probe points (4 and
        ``atomic_probe_hi``)."""
        lo, hi = 4.0, max(self.atomic_probe_hi, 8.0)
        a = min(max(float(addresses), lo), hi)
        frac = (math.log(a) - math.log(lo)) / (math.log(hi) - math.log(lo))
        return (self.atomic_contended_ns
                + frac * (self.atomic_uncontended_ns
                          - self.atomic_contended_ns))

    def transfer_seconds(self, nominal_bytes: float) -> float:
        """Predicted host<->device transfer time for ``nominal_bytes``."""
        if not math.isfinite(self.transfer_gbs):
            return self.transfer_latency_s
        return (self.transfer_latency_s
                + nominal_bytes / (self.transfer_gbs * cl.GB))


def _timed(engine: OcelotEngine, kernel: str, *args) -> float:
    """Wall time of one launch as a host would observe it (makespan
    delta across clFinish — includes the driver's submit overhead)."""
    queue = engine.queue
    before = queue.finish()
    engine.launch(kernel, *args)
    return queue.finish() - before


def _timed_transfer(engine: OcelotEngine, fn) -> float:
    """Makespan delta of one host<->device transfer command."""
    queue = engine.queue
    before = queue.finish()
    fn()
    return queue.finish() - before


def probe_device(engine: OcelotEngine) -> DeviceCharacteristics:
    """Run the standardized micro-probes on ``engine``'s device.

    The probe's working set is pinned through an operator scope, so it
    can never be evicted out from under a running probe kernel; devices
    too small to even host the (capacity-clamped) probe fail loudly with
    :class:`~repro.ocelot.memory.OcelotOOM`.
    """
    with engine.memory.operator_scope():
        return _probe_device_pinned(engine)


def _probe_device_pinned(engine: OcelotEngine) -> DeviceCharacteristics:
    rng = np.random.default_rng(99)
    scale = engine.context.data_scale
    # Probes must never pressure device memory (they run on live engines
    # whose caches they should not disturb): clamp the probe's *nominal*
    # footprint to a small fraction of capacity.  The measured rates are
    # scale-invariant, so a smaller probe yields the same profile.
    capacity = engine.context.capacity
    n = max(1 << 8, min(_PROBE_ELEMS, int(capacity // (64 * scale))))
    nominal_bytes = 4 * n * scale
    probe_values = rng.integers(0, 1 << 30, n).astype(np.int32)

    data = engine.memory.allocate_filled(
        probe_values, kind=BufferKind.AUX, tag="probe_data"
    )
    out = engine.temp(n, np.int32, tag="probe_out")

    # launch overhead: a one-element kernel is all fixed cost
    tiny = engine.temp(1, np.uint32, tag="probe_tiny")
    launch = _timed(engine, "fill", tiny, 1, 0)

    # host link: a one-element transfer is all latency; the full probe
    # column exposes the (PCIe) bandwidth — or the zero-copy mapping
    queue = engine.queue
    t_lat = _timed_transfer(
        engine, lambda: queue.enqueue_write(tiny, np.zeros(1, np.uint32))
    )
    t_up = _timed_transfer(
        engine, lambda: queue.enqueue_write(data, probe_values)
    )
    t_down = _timed_transfer(engine, lambda: queue.enqueue_read(data))
    per_byte = max(t_up + t_down - 2 * t_lat, 0.0) / (2 * nominal_bytes)
    transfer_gbs = (
        float("inf") if per_byte * nominal_bytes < 1e-9
        else 1.0 / (per_byte * cl.GB)
    )

    # streaming: element-wise copy reads + writes the column
    t_stream = max(_timed(engine, "ewise_scalar", out, data, n, "add", 0)
                   - launch, 1e-12)
    stream_gbs = 2 * nominal_bytes / t_stream / cl.GB

    # gather: random permutation access
    perm = engine.memory.allocate_filled(
        rng.permutation(n).astype(np.uint32),
        kind=BufferKind.AUX,
        tag="probe_perm",
    )
    t_gather = max(_timed(engine, "gather", out, data, perm, n) - launch,
                   1e-12)
    gather_gbs = nominal_bytes / t_gather / cl.GB

    # atomics: grouped aggregation against few vs many targets (the
    # many-target partials table is clamped so it cannot OOM the device;
    # transient pressure up to ~capacity/4 is fine, the cache absorbs it)
    parts = engine.device.profile.num_work_groups
    many = max(
        1 << 6,
        min(65536, int(capacity // (4 * scale * parts * 8))),
    )

    def atomic_ns(groups: int) -> float:
        gids = engine.memory.allocate_filled(
            rng.integers(0, groups, n).astype(np.uint32),
            kind=BufferKind.AUX,
            tag="probe_gids",
        )
        partials = engine.temp((parts, groups), np.int64,
                               tag="probe_partials", zeroed=True)
        seconds = max(
            _timed(engine, "grouped_agg_partial", partials, gids, gids,
                   n, groups, "count", 1, True) - launch,
            1e-12,
        )
        engine.release(gids, partials)
        return seconds / (n * scale) * 1e9

    contended = atomic_ns(4)
    uncontended = atomic_ns(many)

    engine.release(data, out, tiny, perm)
    profile = engine.device.profile
    return DeviceCharacteristics(
        device_name=engine.device.name,
        stream_gbs=stream_gbs,
        gather_gbs=gather_gbs,
        launch_overhead_s=launch,
        atomic_contended_ns=contended,
        atomic_uncontended_ns=uncontended,
        partitions=profile.total_invocations,
        local_mem_bytes=profile.local_mem_bytes,
        work_group_size=profile.work_group_size,
        transfer_gbs=transfer_gbs,
        transfer_latency_s=t_lat,
        global_mem_bytes=profile.global_mem_bytes,
        atomic_probe_hi=float(many),
    )


def radix_feasible(chars: DeviceCharacteristics, bits: int) -> bool:
    """Whether every work-item's private digit counters fit local memory.

    This is the constraint that splits the devices: the CPU's 256 KB per
    core hosts 256 counters per item comfortably (radix 8), while the
    GTX 460's 48 KB shared by 192 work-items leaves room for at most
    2^6 counters — radix 4 is the largest power-of-4 width that fits
    (exactly the paper's §5.2.7 choices).
    """
    per_item = chars.local_mem_bytes / max(chars.work_group_size, 1)
    return (1 << bits) * 4 <= per_item


def estimate_sort_cost(
    chars: DeviceCharacteristics,
    bits: int,
    column_bytes: float = 256 * cl.MB,
    key_bits: int = 32,
) -> float:
    """Predicted radix-sort seconds from the measured characteristics.

    Per pass: three launches, one streaming read for the histogram, a
    histogram/offsets volume of ``partitions * 2^bits`` counters
    (processed at streaming rate), and a read+write data shuffle.
    Infeasible widths (counters spill out of local memory) are infinite.
    """
    if not radix_feasible(chars, bits):
        return float("inf")
    passes = -(-key_bits // bits)
    histogram_bytes = chars.partitions * (1 << bits) * 4
    payload = 2.0  # keys + payload
    per_pass = (
        3 * chars.launch_overhead_s
        + column_bytes / (chars.stream_gbs * cl.GB)              # histogram
        + 3 * histogram_bytes / (chars.stream_gbs * cl.GB)       # offsets
        + 2 * payload * column_bytes / (chars.stream_gbs * cl.GB)  # shuffle
        + 0.5 * column_bytes / (chars.gather_gbs * cl.GB)        # scatter tail
    )
    return passes * per_pass


def choose_radix_bits(chars: DeviceCharacteristics,
                      candidates=RADIX_CANDIDATES) -> int:
    """The radix width minimising the predicted sort cost."""
    best = min(candidates, key=lambda bits: estimate_sort_cost(chars, bits))
    if estimate_sort_cost(chars, best) == float("inf"):
        raise ValueError("no feasible radix width among candidates")
    return best


@dataclass
class TuningReport:
    characteristics: DeviceCharacteristics
    radix_bits: int
    predicted_sort_costs: dict


def autotune(engine: OcelotEngine) -> TuningReport:
    """Probe the device and install the tuned parameters on ``engine``."""
    chars = probe_device(engine)
    costs = {
        bits: estimate_sort_cost(chars, bits) for bits in RADIX_CANDIDATES
    }
    bits = choose_radix_bits(chars)
    engine.radix_bits = bits
    engine.characteristics = chars
    engine.program = cl.build(
        engine.context, KERNEL_LIBRARY, {"RADIX_BITS": bits}
    )
    return TuningReport(
        characteristics=chars, radix_bits=bits, predicted_sort_costs=costs
    )
