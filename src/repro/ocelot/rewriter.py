"""The Ocelot query rewriter (paper §3.1, §3.4).

Adjusts MonetDB query plans for Ocelot by rerouting operator calls to the
corresponding Ocelot implementations (swapping the instruction's module)
and inserting explicit ``ocelot.sync`` instructions at ownership
boundaries: before a MonetDB-executed operator consumes an Ocelot-owned
BAT, and before result columns are returned.

Operators without an Ocelot implementation (e.g. ``algebra.firstn``)
stay on MonetDB — the paper's mixed execution mode.

The heterogeneous ("HET") configuration runs the same rewritten plans:
MonetDB-boundary syncs stay static (inserted here), while *device
crossing* syncs cannot be known at plan time — placement is cost-based
and data-gravity-driven — so the scheduler inserts them dynamically
(:meth:`repro.sched.pool.DevicePool.ensure_on` joins the two queues'
makespans whenever an operand changes devices).  This module contributes
the static operator knowledge the scheduler needs: which Ocelot
functions are row-independent and therefore safe to split across devices
(partitioned fan-out with a host-side merge).
"""

from __future__ import annotations

from ..monetdb.mal import MALInstruction, MALProgram, Var

#: MonetDB op -> (ocelot function, result kinds).  ``bat`` results become
#: Ocelot-owned and need a sync at ownership boundaries; ``scalar``
#: results are host values already.
OCELOT_MAP: dict[str, tuple[str, tuple[str, ...]]] = {
    "algebra.select": ("select", ("bat",)),
    "algebra.thetaselect": ("thetaselect", ("bat",)),
    "algebra.projection": ("projection", ("bat",)),
    "algebra.join": ("join", ("bat", "bat")),
    "algebra.thetajoin": ("thetajoin", ("bat", "bat")),
    "algebra.semijoin": ("semijoin", ("bat",)),
    "algebra.antijoin": ("antijoin", ("bat",)),
    "algebra.sort": ("sort", ("bat", "bat")),
    "bat.mirror": ("mirror", ("bat",)),
    "group.group": ("group", ("bat", "scalar")),
    "group.subgroup": ("subgroup", ("bat", "scalar")),
    "aggr.sum": ("sum", ("scalar",)),
    "aggr.min": ("min", ("scalar",)),
    "aggr.max": ("max", ("scalar",)),
    "aggr.count": ("count", ("scalar",)),
    "aggr.avg": ("avg", ("scalar",)),
    "aggr.subsum": ("subsum", ("bat",)),
    "aggr.submin": ("submin", ("bat",)),
    "aggr.submax": ("submax", ("bat",)),
    "aggr.subcount": ("subcount", ("bat",)),
    "aggr.subavg": ("subavg", ("bat",)),
    "algebra.oidunion": ("oidunion", ("bat",)),
    "algebra.oidintersect": ("oidintersect", ("bat",)),
    "algebra.hashbuild": ("hashbuild", ("scalar",)),
    "batcalc.add": ("add", ("bat",)),
    "batcalc.sub": ("sub", ("bat",)),
    "batcalc.mul": ("mul", ("bat",)),
    "batcalc.div": ("div", ("bat",)),
    "batcalc.intdiv": ("intdiv", ("bat",)),
    "batcalc.and": ("and", ("bat",)),
    "batcalc.or": ("or", ("bat",)),
    "batcalc.eq": ("eq", ("bat",)),
    "batcalc.ne": ("ne", ("bat",)),
    "batcalc.lt": ("lt", ("bat",)),
    "batcalc.le": ("le", ("bat",)),
    "batcalc.gt": ("gt", ("bat",)),
    "batcalc.ge": ("ge", ("bat",)),
    "batcalc.ifthenelse": ("ifthenelse", ("bat",)),
}


#: Result kinds of the compressed-execution forms (module ``compress``),
#: mirroring OCELOT_MAP: ``bat`` results may come back device-owned
#: when the runtime operator delegated to an ocelot.* implementation.
_COMPRESS_RESULT_KINDS: dict[str, tuple[str, ...]] = {
    "select": ("bat",),
    "thetaselect": ("bat",),
    "group": ("bat", "scalar"),
    "submin": ("bat",),
    "submax": ("bat",),
    "sum": ("scalar",),
    "min": ("scalar",),
    "max": ("scalar",),
    "count": ("scalar",),
    "avg": ("scalar",),
}


#: Row-independent Ocelot functions, by fan-out shape (consumed by the
#: heterogeneous scheduler).  Element-wise ops merge by concatenation,
#: selections by offsetting + concatenating the qualifying-oid lists,
#: grouped aggregates by folding the per-device ngroups-wide partials.
EWISE_FUNCTIONS = frozenset({
    "add", "sub", "mul", "div", "intdiv", "and", "or",
    "eq", "ne", "lt", "le", "gt", "ge", "ifthenelse",
})
SELECT_FUNCTIONS = frozenset({"select", "thetaselect"})
GROUPED_AGG_FUNCTIONS = frozenset({
    "subsum", "submin", "submax", "subcount", "subavg",
})
PARTITIONABLE_FUNCTIONS = (
    EWISE_FUNCTIONS | SELECT_FUNCTIONS | GROUPED_AGG_FUNCTIONS
)


def rewrite_for_ocelot(program: MALProgram) -> MALProgram:
    """Reroute supported operators to Ocelot and insert syncs."""
    out = MALProgram(name=program.name)
    ocelot_owned: set[str] = set()
    rename: dict[str, Var] = {}

    def resolve(arg):
        if isinstance(arg, Var):
            return rename.get(arg.name, arg)
        return arg

    def sync_var(var: Var) -> Var:
        synced = Var(var.name + "_s")
        out.instructions.append(
            MALInstruction((synced,), "ocelot", "sync", (var,))
        )
        rename[var.name] = synced
        ocelot_owned.discard(var.name)
        return synced

    for instruction in program.instructions:
        args = tuple(resolve(a) for a in instruction.args)
        if instruction.module == "fuse":
            # fused regions (repro.fuse) run as one generated Ocelot
            # kernel; every live output is a device-resident BAT
            out.instructions.append(
                MALInstruction(
                    instruction.results, "ocelot", instruction.function,
                    args,
                )
            )
            for var in instruction.results:
                ocelot_owned.add(var.name)
            continue
        if instruction.module == "compress":
            # compressed-execution forms (repro.compress) stay as-is:
            # the runtime operator delegates to the ocelot.* device
            # implementations itself, so BAT results may come back
            # device-owned and need syncs at ownership boundaries
            # (host-produced results are MonetDB-owned already and the
            # inserted sync is then a no-op)
            out.instructions.append(
                MALInstruction(
                    instruction.results, "compress", instruction.function,
                    args,
                )
            )
            kinds = _COMPRESS_RESULT_KINDS.get(
                instruction.function, ("bat",)
            )
            for var, kind in zip(instruction.results, kinds):
                if kind == "bat":
                    ocelot_owned.add(var.name)
            continue
        mapping = OCELOT_MAP.get(instruction.op)
        if mapping is not None:
            function, kinds = mapping
            out.instructions.append(
                MALInstruction(instruction.results, "ocelot", function, args)
            )
            for var, kind in zip(instruction.results, kinds):
                if kind == "bat":
                    ocelot_owned.add(var.name)
            continue
        # Stays on MonetDB: ownership must be handed back first.
        synced_args = tuple(
            sync_var(a)
            if isinstance(a, Var) and a.name in ocelot_owned
            else a
            for a in args
        )
        out.instructions.append(
            MALInstruction(
                instruction.results,
                instruction.module,
                instruction.function,
                synced_args,
            )
        )

    for name, var in program.result_columns:
        resolved = resolve(var)
        if isinstance(resolved, Var) and resolved.name in ocelot_owned:
            resolved = sync_var(resolved)
        out.result_columns.append((name, resolved))
    return out


def count_syncs(program: MALProgram) -> int:
    """Number of sync points a rewritten plan contains (test helper)."""
    return sum(1 for i in program.instructions if i.op == "ocelot.sync")
