"""The Ocelot engine: OpenCL context management + operator backend.

``OcelotEngine`` is the paper's "OpenCL Context Management" component
(§3.1): it initialises the runtime for one device, triggers kernel
compilation (injecting the device type and the device-appropriate radix
width as pre-processor constants), owns the command queue and the Memory
Manager, and offers shared host-code helpers.

``OcelotBackend`` plugs the Ocelot operators into the MAL interpreter as
drop-in replacements.  MAL instructions in the ``ocelot`` module dispatch
to host code; anything else (``sql.bind``, operators Ocelot does not
support, such as ``algebra.firstn``) falls back to an embedded sequential
MonetDB backend — the paper's mixed execution mode, with the rewriter
guaranteeing ``sync`` boundaries in between.
"""

from __future__ import annotations

import numpy as np

from .. import cl
from ..cl import CommandQueue, Context, Device
from ..kernels import KERNEL_LIBRARY
from ..monetdb.bat import BAT, OID_DTYPE, Role
from ..monetdb.interpreter import Backend
from ..monetdb.backends import MonetDBSequential
from ..monetdb.storage import Catalog
from .memory import BufferKind, MemoryManager


class OcelotEngine:
    """Per-device runtime state shared by all Ocelot operators."""

    def __init__(
        self,
        catalog: Catalog,
        device: Device | str = "cpu",
        data_scale: float = 1.0,
    ):
        if isinstance(device, str):
            device = cl.get_device(device)
        self.device = device
        self.context = Context(device, data_scale=data_scale)
        self.queue = CommandQueue(self.context)
        self.catalog = catalog
        self.memory = MemoryManager(self.context, self.queue, catalog)
        #: paper §5.2.7: radix width 8 on the CPU, 4 on the GPU.
        self.radix_bits = 8 if device.is_cpu else 4
        #: measured device profile, installed by ``autotune.autotune``
        #: (consumed by the heterogeneous scheduler's placement policy)
        self.characteristics = None
        self.program = cl.build(
            self.context, KERNEL_LIBRARY, {"RADIX_BITS": self.radix_bits}
        )

    # -- kernel launching ---------------------------------------------------

    def launch(self, kernel_name: str, *args, **kwargs):
        """Enqueue one kernel from the compiled program."""
        return self.program.kernel(kernel_name).launch(self.queue, *args, **kwargs)

    @property
    def invocations(self) -> int:
        """Kernel invocations per launch (4 x nc x na, paper §4.2)."""
        return self.device.profile.total_invocations

    # -- host <-> device scalars ------------------------------------------------

    def readback(self, buffer) -> np.ndarray:
        """Transfer a (small) buffer to the host and wait — the stall a
        real engine pays when it needs a result size on the host."""
        host, _event = self.queue.enqueue_read(buffer)
        self.queue.finish()
        return host

    def readback_scalar(self, buffer):
        return self.readback(buffer)[0]

    # -- BAT plumbing -------------------------------------------------------------

    def device_bat(self, buffer, role: Role = Role.VALUES,
                   count: int | None = None, **flags) -> BAT:
        """Create a device-resident result BAT linked to ``buffer``."""
        if count is None:
            count = buffer.size
        if role is Role.BITMAP:
            bat = BAT(None, role, nbits=count)
        else:
            bat = BAT(None, role)
            bat._count = int(count)  # device-resident: set logical size
        for flag, value in flags.items():
            # constructor-style names map onto the BAT attributes
            setattr(bat, "sorted" if flag == "sorted_" else flag, value)
        return self.memory.link_result(bat, buffer)

    def buffer_of(self, bat: BAT):
        """Device buffer for any BAT (upload / cache via Memory Manager)."""
        return self.memory.buffer_for_bat(bat)

    def temp(self, shape, dtype, tag: str = "tmp", zeroed: bool = False):
        """Short-lived device scratch buffer."""
        return self.memory.allocate(
            shape, dtype, BufferKind.AUX, tag=tag, zeroed=zeroed
        )

    def result_buffer(self, shape, dtype, tag: str = "res", zeroed: bool = False):
        return self.memory.allocate(
            shape, dtype, BufferKind.RESULT, tag=tag, zeroed=zeroed
        )

    def release(self, *buffers) -> None:
        for buffer in buffers:
            if buffer is not None:
                self.memory.release(buffer)

    def iota(self, n: int, tag: str = "iota"):
        buf = self.result_buffer(max(n, 1), OID_DTYPE, tag=tag)
        self.launch("iota", buf, n, 0)
        return buf


class OcelotBackend(Backend):
    """MAL backend dispatching to Ocelot host code (drop-in operators)."""

    def __init__(
        self,
        catalog: Catalog,
        device: Device | str = "cpu",
        data_scale: float = 1.0,
    ):
        self.engine = OcelotEngine(catalog, device, data_scale)
        self.label = "GPU" if self.engine.device.is_gpu else "CPU"
        self.fallback = MonetDBSequential(catalog)
        self._t0 = 0.0
        super().__init__(catalog)

    # -- registration ---------------------------------------------------------

    def _register_ops(self) -> None:
        from . import operators

        engine = self.engine

        def bind_host_code(fn):
            def op(*args):
                # Auto-pin the operator's working set (paper §3.3: the
                # Memory Manager uses reference counting to prevent
                # evicting buffers that are currently in use).
                with engine.memory.operator_scope():
                    return fn(engine, *args)

            return op

        for name, fn in operators.HOST_CODE.items():
            self.register(f"ocelot.{name}", bind_host_code(fn))
        # compressed-execution forms, registered on *this* backend so
        # their internal delegation targets the ocelot.* device
        # operators (the dictionary codes get uploaded and cached at
        # payload width) instead of the host fallback
        from ..compress.ops import register_compress_ops

        register_compress_ops(self)

    def resolve(self, op: str):
        if op in self._registry:
            return self._registry[op]
        # Mixed execution: delegate to MonetDB, folding its time into the
        # host timeline (the rewriter has already inserted syncs).
        inner = self.fallback.resolve(op)

        def foreign(*args):
            before = self.fallback.elapsed()
            out = inner(*args)
            self.engine.queue.host_time += self.fallback.elapsed() - before
            return out

        return foreign

    def supports(self, op: str) -> bool:
        return op in self._registry or self.fallback.supports(op)

    # -- timing ----------------------------------------------------------------------

    def begin(self) -> None:
        self.fallback.begin()
        self._t0 = self.engine.queue.finish()
        # fixed per-query framework cost (Intel SDK beta, paper §5.3.2)
        overhead = self.engine.device.profile.framework_overhead_s
        if overhead:
            self.engine.queue.host_time += overhead

    def elapsed(self) -> float:
        return self.engine.queue.finish() - self._t0

    def elapsed_now(self) -> float:
        # read-only makespan: no clFinish, the schedule is untouched
        return self.engine.queue.makespan() - self._t0

    def query_overhead_s(self) -> float:
        return self.engine.device.profile.framework_overhead_s

    def memory_managers(self):
        return (self.engine.memory,)

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release every device buffer this backend's engine caches."""
        self.engine.memory.shutdown()

    # -- result collection ----------------------------------------------------------

    def collect(self, value):
        if isinstance(value, BAT) and not value.has_host_values:
            raise RuntimeError(
                f"result BAT {value.tag!r} reached the result set without a "
                f"sync — rewriter bug"
            )
        return super().collect(value)
