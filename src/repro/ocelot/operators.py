"""Ocelot operator host code (paper §3.2, §4.1).

Each function is the *host code* of one drop-in MAL operator: it checks
inputs, sets up buffers through the Memory Manager, schedules kernels via
Context Management, and returns a new BAT linked to the result buffer.
Host code is written completely device-independently — every
device-dependent decision lives in the kernel library's pre-processor
specialisation, the device cost model, or the Memory Manager.

Operator catalogue (module-level ``HOST_CODE`` maps MAL names here):

=================  ======================================================
``select``         bitmap selection (§4.1.1); candidates AND-combined
``projection``     left fetch join: gather, after bitmap materialisation
``join``           hash join over the multi-stage lookup table (§4.1.5)
``thetajoin``      two-step nested-loop join
``semijoin`` /
``antijoin``       probe-only membership joins
``sort``           binary radix sort, width by device (§4.1.3)
``group`` /
``subgroup``       hash grouping with dense ascending ids (§4.1.6)
``sum``/...        binary-reduction scalar aggregates (§4.1.7)
``subsum``/...     hierarchical grouped aggregates (§4.1.7)
``add``/...        element-wise batcalc replacements
``pipe``           generated single-pass fused region (repro.fuse)
``sync``           ownership hand-over to MonetDB (§3.4)
=================  ======================================================
"""

from __future__ import annotations

import numpy as np

from ..cl import Local
from ..kernels.aggregation import accumulators_for
from ..kernels.hashing import EMPTY, TableFull
from ..kernels.radix_sort import key_dtype_for, key_kind_for, num_passes
from ..kernels.selection import bitmap_nbytes
from ..fuse.dispatch import op_pipe
from ..monetdb.bat import BAT, OID_DTYPE, Owner, Role
from ..monetdb.backends import select_bounds_to_op
from ..monetdb.calc import calc_result_dtype, grouped_dtype
from .engine import OcelotEngine
from .memory import BufferKind

_ACC_INT = np.dtype(np.int64)
_ACC_FLOAT = np.dtype(np.float64)

_SWAPPED_CMP = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
                "eq": "eq", "ne": "ne"}


# ---------------------------------------------------------------------------
# shared host-code helpers
# ---------------------------------------------------------------------------

def _count_of(bat: BAT) -> int:
    return bat.count


def _as_candidate_bitmap(engine: OcelotEngine, cand: BAT, n_bits: int):
    """Candidate input as a device bitmap.

    Bitmap BATs pass their buffer through the Memory Manager reference;
    oid-list candidates (e.g. handed over from MonetDB) are converted.
    Returns ``(buffer, is_temporary)``.
    """
    if cand.role is Role.BITMAP:
        return engine.buffer_of(cand), False
    oid_buf = engine.buffer_of(cand)
    bm = engine.temp(bitmap_nbytes(n_bits), np.uint8, tag="cand_bm")
    engine.launch("oids_to_bitmap", bm, oid_buf, cand.count, n_bits)
    return bm, True


def _materialize_bitmap(engine: OcelotEngine, bitmap_buf, n_bits: int,
                        tag: str = "oids"):
    """Bitmap -> qualifying-oid list (paper §4.1.2): per-partition counts,
    prefix sum for unique write offsets, offset-addressed writes.

    Returns ``(oids_buffer, count)``.
    """
    parts = engine.invocations
    nbytes = bitmap_nbytes(n_bits)
    counts = engine.temp(parts, np.uint32, tag="bm_counts")
    engine.launch("bitmap_count", counts, bitmap_buf, nbytes, parts)
    offsets = engine.temp(parts + 1, np.uint32, tag="bm_offsets")
    engine.launch("prefix_sum", offsets, counts, parts)
    total = int(engine.readback(offsets)[parts])
    oids = engine.result_buffer(max(total, 1), OID_DTYPE, tag=tag)
    if total:
        engine.launch("bitmap_write_oids", oids, bitmap_buf, offsets,
                      n_bits, parts)
    engine.release(counts, offsets)
    return oids, total


def _oid_view(engine: OcelotEngine, bat: BAT):
    """Materialised oid list of a bitmap BAT, cached on the BAT so that
    the many projections against one selection pay for it once."""
    cached = bat.aux.get("oid_view")
    if cached is not None and not cached.released:
        engine.memory.scope_pin(cached)
        return cached, bat.aux["oid_view_count"]
    bitmap_buf = engine.buffer_of(bat)
    oids, total = _materialize_bitmap(engine, bitmap_buf, bat.count)
    bat.aux["oid_view"] = oids
    bat.aux["oid_view_count"] = total
    return oids, total


def _oids_of(engine: OcelotEngine, bat: BAT):
    """(buffer, count, unique?) of an oid-bearing input (oid list or
    bitmap)."""
    if bat.role is Role.BITMAP:
        buf, count = _oid_view(engine, bat)
        return buf, count, True
    return engine.buffer_of(bat), bat.count, bat.key


def _encode_keys(engine: OcelotEngine, bat_or_buf, n: int, dtype):
    """Column -> order-preserving unsigned keys (radix sort / hashing).

    Four-byte columns encode to uint32; eight-byte aggregate results
    (float64/int64 tails) encode to uint64 so ORDER BY over aggregates
    works.
    """
    col = (
        engine.buffer_of(bat_or_buf)
        if isinstance(bat_or_buf, BAT)
        else bat_or_buf
    )
    ukeys = engine.temp(max(n, 1), key_dtype_for(dtype), tag="ukeys")
    engine.launch("key_encode", ukeys, col, n, key_kind_for(dtype))
    return ukeys


def _radix_sort(engine: OcelotEngine, keys_buf, n: int, payload_buf=None):
    """Full binary radix sort (paper §4.1.3): three kernels per pass.

    Sorts ``keys_buf`` (uint32/uint64) carrying ``payload_buf`` (default:
    iota, i.e. the sort permutation).  Returns ``(sorted_keys, payload)``
    — buffers owned by the caller.
    """
    bits = engine.radix_bits
    radix = 1 << bits
    parts = engine.invocations
    if payload_buf is None:
        payload_buf = engine.iota(n, tag="sort_pay")
    keys_a, pay_a = keys_buf, payload_buf
    keys_b = engine.result_buffer(max(n, 1), keys_buf.dtype, tag="sort_keys_b")
    pay_b = engine.result_buffer(max(n, 1), OID_DTYPE, tag="sort_pay_b")
    hist = engine.temp(parts * radix, np.uint32, tag="radix_hist")
    offsets = engine.temp(parts * radix, np.uint32, tag="radix_offsets")
    for p in range(num_passes(bits, keys_buf.dtype.itemsize * 8)):
        shift = p * bits
        engine.launch("radix_histogram", hist, keys_a, n, shift, parts)
        engine.launch("radix_offsets", offsets, hist, parts)
        engine.launch(
            "radix_reorder", keys_b, pay_b, keys_a, pay_a, offsets,
            n, shift, parts,
        )
        keys_a, keys_b = keys_b, keys_a
        pay_a, pay_b = pay_b, pay_a
    engine.release(hist, offsets)
    # After an even number of swaps the result may sit in the originals;
    # the caller owns whatever we return and we release the other pair.
    engine.release(keys_b, pay_b)
    return keys_a, pay_a


def _build_hash_table(engine: OcelotEngine, keys_buf, vals_buf, n: int,
                      size_hint: int | None = None):
    """Optimistic/pessimistic parallel hash build (paper §4.1.4).

    Over-allocates 1.4x for the observed ~75 % fill rate; restarts with a
    doubled table on pessimistic failure.  Returns ``(tkeys, tvals, m)``.
    """
    base = size_hint if size_hint is not None else n
    m = max(16, int(1.4 * base) + 1)
    parts = engine.invocations
    attempts = 0
    while True:
        attempts += 1
        tkeys = engine.temp(m, np.uint32, tag="ht_keys")
        tvals = engine.temp(m, np.uint32, tag="ht_vals")
        engine.launch("fill", tkeys, m, EMPTY)
        engine.launch("fill", tvals, m, 0)
        engine.launch("ht_insert_optimistic", tkeys, tvals, keys_buf,
                      vals_buf, n, m)
        fail_bm = engine.temp(bitmap_nbytes(n), np.uint8, tag="ht_fail")
        engine.launch("ht_check", fail_bm, tkeys, keys_buf, n, m)
        counts = engine.temp(parts, np.uint32, tag="ht_fail_counts")
        engine.launch("bitmap_count", counts, fail_bm, bitmap_nbytes(n), parts)
        total_buf = engine.temp(1, np.uint32, tag="ht_fail_total")
        engine.launch("reduce_final", total_buf, counts, parts, "sum")
        failed = int(engine.readback_scalar(total_buf))
        engine.release(counts, total_buf)
        unplaced = 0
        if failed:
            stats = engine.temp(2, np.uint32, tag="ht_stats", zeroed=True)
            engine.launch("ht_insert_pessimistic", tkeys, tvals, stats,
                          keys_buf, vals_buf, fail_bm, n, m)
            unplaced = int(engine.readback(stats)[1])
            engine.release(stats)
        engine.release(fail_bm)
        if unplaced:
            if attempts > 8:
                raise TableFull(
                    f"hash build failed after {attempts} restarts"
                )
            engine.release(tkeys, tvals)
            m = 2 * m + 1
            continue
        return tkeys, tvals, m


def _dense_ids(engine: OcelotEngine, ukeys_buf, n: int):
    """Dense group ids (ascending key order) for encoded uint32 keys.

    Hash grouping (paper §4.1.6): hash table for the distinct set, dense
    ids via rank of the sorted distinct keys, assignment via look-ups.
    Returns ``(gids_buffer, ngroups)``.
    """
    if n == 0:
        return engine.result_buffer(1, np.uint32, tag="gids"), 0
    tkeys, tvals, m = _build_hash_table(engine, ukeys_buf, ukeys_buf, n)
    occupied = engine.temp(bitmap_nbytes(m), np.uint8, tag="ht_occ")
    engine.launch("select_bitmap", occupied, tkeys, m, "!=", EMPTY, None, False)
    slots, n_unique = _materialize_bitmap(engine, occupied, m, tag="ht_slots")
    unique = engine.temp(n_unique, np.uint32, tag="uniq_keys")
    engine.launch("gather", unique, tkeys, slots, n_unique)
    engine.release(occupied, slots, tkeys, tvals)
    sorted_unique, ranks_payload = _radix_sort(engine, unique, n_unique)
    engine.release(ranks_payload)
    ranks = engine.iota(n_unique, tag="ranks")
    rk, rv, m2 = _build_hash_table(
        engine, sorted_unique, ranks, n_unique, size_hint=n_unique
    )
    gids = engine.result_buffer(n, np.uint32, tag="gids")
    found = engine.temp(bitmap_nbytes(n), np.uint8, tag="gids_found",
                        zeroed=True)
    engine.launch("ht_probe", gids, found, rk, rv, ukeys_buf, n, m2)
    engine.release(found, sorted_unique, ranks, rk, rv)
    return gids, n_unique


# ---------------------------------------------------------------------------
# selection (§4.1.1)
# ---------------------------------------------------------------------------

def op_select(engine: OcelotEngine, b: BAT, cand, lo, hi, li, hi_incl, anti):
    op, lo_v, hi_v = select_bounds_to_op(lo, hi, bool(li), bool(hi_incl))
    return _select_common(engine, b, cand, op, lo_v, hi_v, bool(anti))


def op_thetaselect(engine: OcelotEngine, b: BAT, cand, val, op: str):
    return _select_common(engine, b, cand, op, val, None, False)


def _select_common(engine, b, cand, op, lo, hi, anti):
    n = _count_of(b)
    col = engine.buffer_of(b)
    with engine.memory.pinned(col):
        bitmap = engine.result_buffer(
            bitmap_nbytes(n), np.uint8, tag="sel_bm"
        )
        engine.launch("select_bitmap", bitmap, col, n, op, lo, hi, anti)
        if cand is not None:
            cand_bm, temporary = _as_candidate_bitmap(engine, cand, n)
            combined = engine.result_buffer(
                bitmap_nbytes(n), np.uint8, tag="sel_bm_and"
            )
            engine.launch(
                "bitmap_binop", combined, bitmap, cand_bm, bitmap_nbytes(n),
                "and",
            )
            engine.release(bitmap)
            if temporary:
                engine.release(cand_bm)
            bitmap = combined
    return engine.device_bat(bitmap, Role.BITMAP, count=n)


# ---------------------------------------------------------------------------
# projection — the left fetch join (§4.1.2)
# ---------------------------------------------------------------------------

def _project_encoded(engine: OcelotEngine, oids: BAT, b: BAT):
    """Device-side projection against a compressed base column.

    Late materialisation without a host decode: gather the narrow code
    payload by oid, then rebuild values *on the device* — a second
    gather against the (tiny) dictionary table, or an element-wise
    frame add for FOR.  The code buffer is what the Memory Manager
    caches, so the device working set stays at payload width.  RLE has
    no run-lookup kernel; those columns return ``None`` and take the
    ordinary upload path.
    """
    encoding = getattr(b, "encoding", None)
    if encoding is None or encoding.kind not in ("dict", "for"):
        return None
    code = b.code_bat()
    codes_buf = engine.buffer_of(code)
    with engine.memory.pinned(codes_buf):
        oid_buf, count, unique = _oids_of(engine, oids)
        codes = engine.temp(max(count, 1), code.dtype, tag="proj_codes")
        if count:
            engine.launch("gather", codes, codes_buf, oid_buf, count)
        out = engine.result_buffer(max(count, 1), b.dtype, tag="proj")
        if encoding.kind == "dict":
            dict_buf = engine.buffer_of(b.dict_bat())
            with engine.memory.pinned(dict_buf):
                if count:
                    engine.launch("gather", out, dict_buf, codes, count)
        else:
            frame = engine.temp(max(count, 1), b.dtype, tag="proj_frame")
            if count:
                engine.launch("fill", frame, count, encoding.frame)
                engine.launch("ewise", out, codes, frame, count, "add")
            engine.release(frame)
        engine.release(codes)
    return engine.device_bat(
        out, Role.VALUES, count=count, key=bool(b.key and unique)
    )


def op_projection(engine: OcelotEngine, oids: BAT, b: BAT):
    if b.role is not Role.BITMAP:
        projected = _project_encoded(engine, oids, b)
        if projected is not None:
            return projected
    if b.role is Role.BITMAP:
        # A bitmap used as the fetch source (row-map composition): its
        # value column is the materialised oid list.
        col, _count = _oid_view(engine, b)
        source_key = True
        dtype = col.dtype
    else:
        col = engine.buffer_of(b)
        source_key = b.key
        dtype = b.dtype
    with engine.memory.pinned(col):
        oid_buf, count, unique = _oids_of(engine, oids)
        out = engine.result_buffer(max(count, 1), dtype, tag="proj")
        if count:
            engine.launch("gather", out, col, oid_buf, count)
    return engine.device_bat(
        out, Role.VALUES, count=count, key=bool(source_key and unique)
    )


# ---------------------------------------------------------------------------
# joins (§4.1.5)
# ---------------------------------------------------------------------------

def _join_table_for(engine: OcelotEngine, r: BAT):
    """The multi-stage hash lookup table of the build side.

    Base-column tables are cached in the Memory Manager (§5.2.6: building
    is expensive compared to probing, so Ocelot keeps them)."""
    cache_key = (r.bat_id, "join") if r.is_base else None
    if cache_key is not None:
        cached = engine.memory.cached_hash_table(cache_key)
        if cached is not None:
            from ..cl import Buffer

            for value in cached.values():
                if isinstance(value, Buffer):
                    engine.memory.scope_pin(value)
            return cached

    n = _count_of(r)
    ukeys = _encode_keys(engine, r, n, r.dtype)
    sorted_keys, build_oids = _radix_sort(engine, ukeys, n)
    # run boundaries -> dense run ids
    bounds = engine.temp(max(n, 1), np.uint32, tag="jt_bounds")
    engine.launch("group_boundaries", bounds, sorted_keys, n)
    rid_excl = engine.temp(max(n, 1) + 1, np.uint32, tag="jt_rid_x")
    engine.launch("prefix_sum", rid_excl, bounds, n)
    rids = engine.temp(max(n, 1), np.uint32, tag="jt_rids")
    engine.launch("ewise", rids, rid_excl, bounds, n, "add")
    n_runs = int(engine.readback(rid_excl)[n]) + (1 if n else 0)
    engine.release(bounds, rid_excl)
    # per-run counts and starts (runs are consecutive in the sorted keys)
    parts = engine.device.profile.num_work_groups
    partials = engine.temp((parts, max(n_runs, 1)), _ACC_INT,
                           tag="jt_partials", zeroed=True)
    engine.launch(
        "grouped_agg_partial", partials, rids, rids, n, n_runs, "count", 1,
        True,
    )
    run_counts = engine.temp(max(n_runs, 1), np.uint32, tag="jt_counts")
    engine.launch("grouped_agg_final", run_counts, partials, n_runs, "count")
    engine.release(partials, rids)
    run_starts = engine.temp(max(n_runs, 1) + 1, np.uint32, tag="jt_starts")
    engine.launch("prefix_sum", run_starts, run_counts, n_runs)
    unique = engine.temp(max(n_runs, 1), np.uint32, tag="jt_unique")
    if n_runs:
        engine.launch("gather", unique, sorted_keys, run_starts, n_runs)
    run_ids = engine.iota(n_runs, tag="jt_ids")
    tkeys, tvals, m = _build_hash_table(
        engine, unique, run_ids, n_runs, size_hint=n_runs
    )
    engine.release(sorted_keys, unique, run_ids)
    table = {
        "tkeys": tkeys, "tvals": tvals, "m": m,
        "run_starts": run_starts, "run_counts": run_counts,
        "build_oids": build_oids, "n_runs": n_runs, "n_build": n,
        "unique_build": n_runs == n,
    }
    if cache_key is not None:
        engine.memory.cache_hash_table(cache_key, table)
    return table


def op_join(engine: OcelotEngine, l: BAT, r: BAT):
    """Hash equi-join; returns (left positions, right positions)."""
    table = _join_table_for(engine, r)
    n = _count_of(l)
    ukeys = _encode_keys(engine, l, n, l.dtype)
    run_idx = engine.temp(max(n, 1), np.uint32, tag="probe_runs")
    found = engine.temp(bitmap_nbytes(n), np.uint8, tag="probe_found",
                        zeroed=True)
    engine.launch(
        "ht_probe", run_idx, found, table["tkeys"], table["tvals"],
        ukeys, n, table["m"],
    )
    if table["unique_build"]:
        # §4.1.5 fast path: key build side, one match per hit, size known.
        lpos, total = _materialize_bitmap(engine, found, n, tag="join_l")
        rpos = engine.result_buffer(max(total, 1), OID_DTYPE, tag="join_r")
        if total:
            # compact the run indices to the found rows first (misses
            # hold the EMPTY sentinel and must never be dereferenced)
            rid_hit = engine.temp(total, np.uint32, tag="join_rid_hit")
            engine.launch("gather", rid_hit, run_idx, lpos, total)
            engine.launch("gather", rpos, table["build_oids"], rid_hit, total)
            engine.release(rid_hit)
        engine.release(run_idx, found, ukeys)
    else:
        counts = engine.temp(max(n, 1), np.uint32, tag="join_counts")
        engine.launch(
            "join_gather_counts", counts, table["run_counts"], run_idx,
            found, n,
        )
        offsets = engine.temp(max(n, 1) + 1, np.uint32, tag="join_offsets")
        engine.launch("prefix_sum", offsets, counts, n)
        total = int(engine.readback(offsets)[n])
        left_iota = engine.iota(n, tag="join_liota")
        lpos = engine.result_buffer(max(total, 1), OID_DTYPE, tag="join_l")
        rpos = engine.result_buffer(max(total, 1), OID_DTYPE, tag="join_r")
        if total:
            engine.launch(
                "join_expand", lpos, rpos, offsets, run_idx,
                table["run_starts"], table["run_counts"],
                table["build_oids"], left_iota, found, n,
            )
        engine.release(counts, offsets, left_iota, run_idx, found, ukeys)
    return (
        engine.device_bat(lpos, Role.OIDS, count=total),
        engine.device_bat(rpos, Role.OIDS, count=total,
                          key=table["unique_build"]),
    )


def op_semijoin(engine: OcelotEngine, l: BAT, r: BAT):
    return _membership(engine, l, r, keep_matching=True)


def op_antijoin(engine: OcelotEngine, l: BAT, r: BAT):
    return _membership(engine, l, r, keep_matching=False)


def _membership(engine, l, r, keep_matching):
    n_r = _count_of(r)
    rkeys = _encode_keys(engine, r, n_r, r.dtype)
    tkeys, tvals, m = _build_hash_table(engine, rkeys, rkeys, n_r)
    n = _count_of(l)
    lkeys = _encode_keys(engine, l, n, l.dtype)
    hits = engine.temp(max(n, 1), np.uint32, tag="semi_hits")
    found = engine.temp(bitmap_nbytes(n), np.uint8, tag="semi_found",
                        zeroed=True)
    engine.launch("ht_probe", hits, found, tkeys, tvals, lkeys, n, m)
    if not keep_matching:
        inverted = engine.temp(bitmap_nbytes(n), np.uint8, tag="semi_not")
        engine.launch("bitmap_not", inverted, found, n, bitmap_nbytes(n))
        engine.release(found)
        found = inverted
    pos, total = _materialize_bitmap(engine, found, n, tag="semi_pos")
    engine.release(rkeys, tkeys, tvals, lkeys, hits, found)
    return engine.device_bat(pos, Role.OIDS, count=total, key=True)


def op_thetajoin(engine: OcelotEngine, l: BAT, r: BAT, op: str):
    """Two-step nested-loop join (count, prefix sum, write) — §4.1.5."""
    nl, nr = _count_of(l), _count_of(r)
    lbuf, rbuf = engine.buffer_of(l), engine.buffer_of(r)
    counts = engine.temp(max(nl, 1), np.uint32, tag="nlj_counts")
    engine.launch("nlj_count", counts, lbuf, rbuf, nl, nr, op)
    offsets = engine.temp(max(nl, 1) + 1, np.uint32, tag="nlj_offsets")
    engine.launch("prefix_sum", offsets, counts, nl)
    total = int(engine.readback(offsets)[nl])
    l_iota = engine.iota(nl, tag="nlj_li")
    r_iota = engine.iota(nr, tag="nlj_ri")
    lpos = engine.result_buffer(max(total, 1), OID_DTYPE, tag="nlj_l")
    rpos = engine.result_buffer(max(total, 1), OID_DTYPE, tag="nlj_r")
    if total:
        engine.launch(
            "nlj_write", lpos, rpos, offsets, lbuf, rbuf, l_iota, r_iota,
            nl, nr, op,
        )
    engine.release(counts, offsets, l_iota, r_iota)
    return (
        engine.device_bat(lpos, Role.OIDS, count=total),
        engine.device_bat(rpos, Role.OIDS, count=total),
    )


# ---------------------------------------------------------------------------
# sort (§4.1.3)
# ---------------------------------------------------------------------------

def op_sort(engine: OcelotEngine, b: BAT, descending):
    n = _count_of(b)
    col = engine.buffer_of(b)
    with engine.memory.pinned(col):
        ukeys = _encode_keys(engine, b, n, b.dtype)
        if descending:
            flipped = engine.temp(max(n, 1), ukeys.dtype, tag="sort_desc")
            all_ones = (1 << (ukeys.dtype.itemsize * 8)) - 1
            engine.launch(
                "ewise_scalar", flipped, ukeys, n, "xor", all_ones
            )
            engine.release(ukeys)
            ukeys = flipped
        sorted_keys, order = _radix_sort(engine, ukeys, n)
        engine.release(sorted_keys)
        out = engine.result_buffer(max(n, 1), b.dtype, tag="sorted")
        if n:
            engine.launch("gather", out, col, order, n)
    return (
        engine.device_bat(out, Role.VALUES, count=n,
                          sorted_=not descending),
        engine.device_bat(order, Role.OIDS, count=n, key=True),
    )


# ---------------------------------------------------------------------------
# grouping (§4.1.6)
# ---------------------------------------------------------------------------

def _sorted_group_ids(engine: OcelotEngine, b: BAT, n: int):
    """Sorted-input strategy (paper §4.1.6): each thread compares its
    value with its predecessor to flag boundaries, then a prefix sum
    yields dense group ids."""
    col = engine.buffer_of(b)
    bounds = engine.temp(max(n, 1), np.uint32, tag="grp_bounds")
    engine.launch("group_boundaries", bounds, col, n)
    excl = engine.temp(max(n, 1) + 1, np.uint32, tag="grp_excl")
    engine.launch("prefix_sum", excl, bounds, n)
    gids = engine.result_buffer(max(n, 1), np.uint32, tag="gids")
    engine.launch("ewise", gids, excl, bounds, n, "add")
    ngroups = int(engine.readback(excl)[n]) + (1 if n else 0)
    engine.release(bounds, excl)
    return gids, ngroups


def _group_id_buffer(engine: OcelotEngine, b: BAT, n: int):
    """Dense group ids for one column, as a bare device buffer."""
    if b.sorted:
        # algorithm variant: boundary detection beats hashing on sorted
        # inputs (ascending order also matches the dense-id convention)
        return _sorted_group_ids(engine, b, n)
    ukeys = _encode_keys(engine, b, n, b.dtype)
    gids, ngroups = _dense_ids(engine, ukeys, n)
    engine.release(ukeys)
    return gids, ngroups


def op_group(engine: OcelotEngine, b: BAT):
    n = _count_of(b)
    gids, ngroups = _group_id_buffer(engine, b, n)
    return engine.device_bat(gids, Role.VALUES, count=n), ngroups


def op_subgroup(engine: OcelotEngine, b: BAT, gids: BAT, ngroups):
    """Multi-column grouping: recursively group the combined ids."""
    n = _count_of(b)
    inner, n_inner = _group_id_buffer(engine, b, n)
    combined = engine.temp(max(n, 1), np.uint32, tag="comb_ids")
    engine.launch(
        "combine_ids", combined, engine.buffer_of(gids),
        inner, n, max(n_inner, 1),
    )
    out, n_out = _dense_ids(engine, combined, n)
    engine.release(combined, inner)
    return engine.device_bat(out, Role.VALUES, count=n), n_out


# ---------------------------------------------------------------------------
# aggregation (§4.1.7)
# ---------------------------------------------------------------------------

def _acc_dtype(op: str, dtype: np.dtype) -> np.dtype:
    if op == "count":
        return _ACC_INT
    if op == "sum":
        return _ACC_FLOAT if dtype.kind == "f" else _ACC_INT
    return np.dtype(dtype)


def _scalar_reduce(engine: OcelotEngine, b: BAT, op: str):
    n = _count_of(b)
    if n == 0:
        if op == "sum":  # SQL NULL stand-in, same rule as MonetDB
            return b.dtype.type(0)
        raise ValueError(f"aggr.{op} over empty input")
    col = engine.buffer_of(b)
    acc = _acc_dtype(op, b.dtype)
    groups = engine.device.profile.num_work_groups
    partials = engine.temp(groups, acc, tag="red_part")
    engine.launch("reduce_partial", partials, col, n, op)
    result = engine.temp(1, acc, tag="red_out")
    engine.launch("reduce_final", result, partials, groups, op)
    value = engine.readback_scalar(result)
    engine.release(partials, result)
    return value


def op_sum(engine, b):
    value = _scalar_reduce(engine, b, "sum")
    return float(value) if b.dtype.kind == "f" else int(value)


def op_min(engine, b):
    return _scalar_reduce(engine, b, "min").item()


def op_max(engine, b):
    return _scalar_reduce(engine, b, "max").item()


def op_count(engine, b):
    if isinstance(b, BAT) and b.role is Role.BITMAP:
        # cardinality of a selection result = set bits in the bitmap
        parts = engine.invocations
        bitmap_buf = engine.buffer_of(b)
        counts = engine.temp(parts, np.uint32, tag="cnt_parts")
        engine.launch(
            "bitmap_count", counts, bitmap_buf, bitmap_nbytes(b.count), parts
        )
        total = engine.temp(1, np.uint32, tag="cnt_total")
        engine.launch("reduce_final", total, counts, parts, "sum")
        value = int(engine.readback_scalar(total))
        engine.release(counts, total)
        return value
    return int(_count_of(b))


def op_avg(engine, b):
    if _count_of(b) == 0:
        return 0.0
    total = _scalar_reduce(engine, b, "sum")
    return float(total) / _count_of(b)


def _grouped_reduce(engine: OcelotEngine, vals, gids, ngroups: int, op: str):
    """Hierarchical grouped aggregation: per-work-group partial tables
    with (emulated) atomics, then one thread per group for the final
    fold."""
    n = _count_of(gids)
    ngroups = max(int(ngroups), 1)
    gid_buf = engine.buffer_of(gids)
    if op == "count":
        val_buf = gid_buf
        acc = _ACC_INT
        out_dtype = grouped_dtype("count", np.uint32)
    else:
        val_buf = engine.buffer_of(vals)
        acc = _acc_dtype(op, vals.dtype)
        out_dtype = grouped_dtype(op, vals.dtype)
    accums, in_local = accumulators_for(
        ngroups, engine.device.profile.local_mem_bytes
    )
    groups = engine.device.profile.num_work_groups
    partials = engine.temp((groups, ngroups), acc, tag="gagg_part",
                           zeroed=True)
    engine.launch(
        "grouped_agg_partial", partials, gid_buf, val_buf, n, ngroups, op,
        accums, in_local,
    )
    result = engine.result_buffer(ngroups, out_dtype, tag="gagg_out")
    engine.launch("grouped_agg_final", result, partials, ngroups, op)
    engine.release(partials)
    return engine.device_bat(result, Role.VALUES, count=ngroups)


def op_subsum(engine, vals, gids, ngroups):
    return _grouped_reduce(engine, vals, gids, int(ngroups), "sum")


def op_submin(engine, vals, gids, ngroups):
    return _grouped_reduce(engine, vals, gids, int(ngroups), "min")


def op_submax(engine, vals, gids, ngroups):
    return _grouped_reduce(engine, vals, gids, int(ngroups), "max")


def op_subcount(engine, gids, ngroups):
    return _grouped_reduce(engine, None, gids, int(ngroups), "count")


def op_subavg(engine, vals, gids, ngroups):
    ngroups = int(ngroups)
    sums = _grouped_reduce(engine, vals, gids, ngroups, "sum")
    counts = _grouped_reduce(engine, None, gids, ngroups, "count")
    out = engine.result_buffer(max(ngroups, 1), _ACC_FLOAT, tag="gavg")
    engine.launch(
        "ewise", out, engine.buffer_of(sums), engine.buffer_of(counts),
        ngroups, "div",
    )
    return engine.device_bat(out, Role.VALUES, count=ngroups)


# ---------------------------------------------------------------------------
# batcalc replacements
# ---------------------------------------------------------------------------

def _scalar_np_dtype(value) -> np.dtype:
    return np.min_scalar_type(value)


def _calc(engine: OcelotEngine, op: str, a, b):
    a_is_bat, b_is_bat = isinstance(a, BAT), isinstance(b, BAT)
    if not (a_is_bat or b_is_bat):
        raise TypeError("batcalc needs at least one BAT operand")
    n = _count_of(a) if a_is_bat else _count_of(b)
    a_dt = a.dtype if a_is_bat else _scalar_np_dtype(a)
    b_dt = b.dtype if b_is_bat else _scalar_np_dtype(b)
    dtype = calc_result_dtype(a_dt, b_dt, op)
    out = engine.result_buffer(max(n, 1), dtype, tag=f"calc_{op}")
    if a_is_bat and b_is_bat:
        engine.launch(
            "ewise", out, engine.buffer_of(a), engine.buffer_of(b), n, op
        )
    elif a_is_bat:
        engine.launch("ewise_scalar", out, engine.buffer_of(a), n, op, b)
    else:
        reversed_op = {"add": "add", "mul": "mul", "sub": "rsub",
                       "div": "rdiv"}[op]
        engine.launch(
            "ewise_scalar", out, engine.buffer_of(b), n, reversed_op, a
        )
    return engine.device_bat(out, Role.VALUES, count=n)


def op_add(engine, a, b):
    return _calc(engine, "add", a, b)


def op_sub(engine, a, b):
    return _calc(engine, "sub", a, b)


def op_mul(engine, a, b):
    return _calc(engine, "mul", a, b)


def op_div(engine, a, b):
    return _calc(engine, "div", a, b)


def _compare(engine: OcelotEngine, op: str, a, b):
    a_is_bat, b_is_bat = isinstance(a, BAT), isinstance(b, BAT)
    n = _count_of(a) if a_is_bat else _count_of(b)
    out = engine.result_buffer(max(n, 1), np.uint8, tag=f"cmp_{op}")
    if a_is_bat and b_is_bat:
        engine.launch(
            "compare_vv", out, engine.buffer_of(a), engine.buffer_of(b),
            n, op,
        )
    elif a_is_bat:
        engine.launch("compare_vs", out, engine.buffer_of(a), n, op, b)
    else:
        engine.launch(
            "compare_vs", out, engine.buffer_of(b), n, _SWAPPED_CMP[op], a
        )
    return engine.device_bat(out, Role.VALUES, count=n)


def op_eq(engine, a, b):
    return _compare(engine, "eq", a, b)


def op_ne(engine, a, b):
    return _compare(engine, "ne", a, b)


def op_lt(engine, a, b):
    return _compare(engine, "lt", a, b)


def op_le(engine, a, b):
    return _compare(engine, "le", a, b)


def op_gt(engine, a, b):
    return _compare(engine, "gt", a, b)


def op_ge(engine, a, b):
    return _compare(engine, "ge", a, b)


def op_ifthenelse(engine: OcelotEngine, cond: BAT, a, b):
    n = _count_of(cond)
    cond_buf = engine.buffer_of(cond)
    a_is_bat, b_is_bat = isinstance(a, BAT), isinstance(b, BAT)
    a_dt = a.dtype if a_is_bat else _scalar_np_dtype(a)
    b_dt = b.dtype if b_is_bat else _scalar_np_dtype(b)
    dtype = np.result_type(a_dt, b_dt)
    out = engine.result_buffer(max(n, 1), dtype, tag="where")
    if a_is_bat and b_is_bat:
        engine.launch(
            "where_vv", out, cond_buf, engine.buffer_of(a),
            engine.buffer_of(b), n,
        )
    elif a_is_bat:
        engine.launch("where_vs", out, cond_buf, engine.buffer_of(a), n, b)
    elif b_is_bat:
        inverted = engine.temp(max(n, 1), np.uint8, tag="where_not")
        engine.launch("compare_vs", inverted, cond_buf, n, "eq", 0)
        engine.launch("where_vs", out, inverted, engine.buffer_of(b), n, a)
        engine.release(inverted)
    else:
        engine.launch("where_ss", out, cond_buf, n, a, b)
    return engine.device_bat(out, Role.VALUES, count=n)


def op_intdiv(engine, a, b):
    return _calc(engine, "intdiv", a, b)


def op_and(engine, a, b):
    return _calc(engine, "and", a, b)


def op_or(engine, a, b):
    return _calc(engine, "or", a, b)


def _oid_combine(engine: OcelotEngine, a: BAT, b: BAT, op: str) -> BAT:
    """Union / intersection of two selection results as bitmap algebra —
    the cheap combination of complex predicates the bitmap encoding buys
    (paper §4.1.1, the Fig. 3 example query's OR)."""
    if a.role is Role.BITMAP:
        n = a.count
    elif b.role is Role.BITMAP:
        n = b.count
    else:
        raise TypeError("ocelot oid combine needs at least one bitmap input")
    a_bm, a_tmp = _as_candidate_bitmap(engine, a, n)
    b_bm, b_tmp = _as_candidate_bitmap(engine, b, n)
    out = engine.result_buffer(bitmap_nbytes(n), np.uint8, tag=f"bm_{op}")
    engine.launch("bitmap_binop", out, a_bm, b_bm, bitmap_nbytes(n), op)
    if a_tmp:
        engine.release(a_bm)
    if b_tmp:
        engine.release(b_bm)
    return engine.device_bat(out, Role.BITMAP, count=n)


def op_oidunion(engine, a, b):
    return _oid_combine(engine, a, b, "or")


def op_oidintersect(engine, a, b):
    return _oid_combine(engine, a, b, "and")


def op_hashbuild(engine: OcelotEngine, b: BAT):
    """Build (and discard) a parallel hash table over ``b`` (§4.1.4) —
    the paper's hashing microbenchmark (Fig. 5(e)/(f))."""
    n = _count_of(b)
    ukeys = _encode_keys(engine, b, n, b.dtype)
    tkeys, tvals, m = _build_hash_table(engine, ukeys, ukeys, n)
    engine.release(ukeys, tkeys, tvals)
    return int(m)


def op_mirror(engine: OcelotEngine, b: BAT):
    n = _count_of(b)
    return engine.device_bat(engine.iota(n), Role.OIDS, count=n, key=True)


# ---------------------------------------------------------------------------
# synchronisation (§3.4)
# ---------------------------------------------------------------------------

def op_sync(engine: OcelotEngine, b):
    """Hand ownership of a BAT back to MonetDB.

    Waits on the buffer's producer events and transfers (or maps) it to
    the host.  Bitmap results are transparently materialised into lists
    of qualifying tuple ids first (paper §4.1.1).  Scalars pass through.
    """
    if not isinstance(b, BAT):
        return b
    if b.owner is Owner.MONETDB:
        return b
    if b.role is Role.BITMAP:
        oid_buf, count = _oid_view(engine, b)
        host, _ = engine.queue.enqueue_read(oid_buf)
        engine.queue.finish()
        b.role = Role.OIDS
        b.return_to_monetdb(host[:count].copy() if count else
                            np.empty(0, OID_DTYPE))
        b.device_ref = oid_buf
        b.key = True
        return b
    # buffer_of restores the tail if the eviction policy offloaded it
    # between the producing operator and this sync
    engine.memory.sync_to_host(b, engine.buffer_of(b))
    return b


HOST_CODE = {
    "select": op_select,
    "thetaselect": op_thetaselect,
    "projection": op_projection,
    "join": op_join,
    "thetajoin": op_thetajoin,
    "semijoin": op_semijoin,
    "antijoin": op_antijoin,
    "sort": op_sort,
    "group": op_group,
    "subgroup": op_subgroup,
    "sum": op_sum,
    "min": op_min,
    "max": op_max,
    "count": op_count,
    "avg": op_avg,
    "subsum": op_subsum,
    "submin": op_submin,
    "submax": op_submax,
    "subcount": op_subcount,
    "subavg": op_subavg,
    "add": op_add,
    "sub": op_sub,
    "mul": op_mul,
    "div": op_div,
    "intdiv": op_intdiv,
    "and": op_and,
    "or": op_or,
    "oidunion": op_oidunion,
    "oidintersect": op_oidintersect,
    "eq": op_eq,
    "ne": op_ne,
    "lt": op_lt,
    "le": op_le,
    "gt": op_gt,
    "ge": op_ge,
    "ifthenelse": op_ifthenelse,
    "mirror": op_mirror,
    "hashbuild": op_hashbuild,
    "pipe": op_pipe,
    "sync": op_sync,
}
