"""``repro.ocelot`` — the hardware-oblivious engine (the paper's S4).

Context management (:class:`OcelotEngine`), the Memory Manager, the
operator host code advertised through MAL bindings, and the query
rewriter that turns MonetDB plans into Ocelot plans.  (Layer map and
query lifecycle: ARCHITECTURE.md §"repro.ocelot".)
"""

from .autotune import (
    DeviceCharacteristics,
    TuningReport,
    autotune,
    choose_radix_bits,
    probe_device,
)
from .engine import OcelotBackend, OcelotEngine
from .memory import BufferKind, CacheEntry, MemoryManager, OcelotOOM
from .rewriter import OCELOT_MAP, count_syncs, rewrite_for_ocelot

__all__ = [
    "BufferKind",
    "CacheEntry",
    "DeviceCharacteristics",
    "MemoryManager",
    "OCELOT_MAP",
    "OcelotBackend",
    "OcelotEngine",
    "OcelotOOM",
    "TuningReport",
    "autotune",
    "choose_radix_bits",
    "count_syncs",
    "probe_device",
    "rewrite_for_ocelot",
]
