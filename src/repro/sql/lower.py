"""Lowering: SQL AST -> MAL plans (binder + planner + code generator).

The lowering mirrors how MonetDB's SQL frontend compiles queries into
column-at-a-time MAL:

* per-table **selection chains** — sargable WHERE conjuncts become
  ``algebra.select`` / ``algebra.thetaselect`` calls threaded through a
  candidate variable; disjunctions become ``algebra.oidunion``,
* a **left-deep join pipeline** in the written JOIN order; after every
  join the surviving tables' row maps are re-projected (the paper's
  observation that the *left fetch join* is the most frequent operator
  falls out of exactly this),
* **residual predicates** (multi-table or non-sargable) are evaluated in
  value space and folded back into positions with a theta-select,
* **grouping** via ``group.group`` / ``group.subgroup`` and the
  ``aggr.sub*`` family; group keys are representative-reduced with
  ``submin`` (all values within a group are equal),
* ORDER BY sorts one column and re-projects the remaining outputs.

Strings exist only as dictionary codes: the binder translates string
literals against the referenced column's dictionary, so only equality
survives — matching Ocelot's string support (paper Appendix A).

Compilation is pure: the same text against the same schema always
yields the same program, which is what lets the serve layer's plan
cache (:mod:`repro.serve.plancache`) memoise ``compile_sql`` keyed by
:func:`sql_cache_key`.  (Layer map: ARCHITECTURE.md §"sql".)
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Optional, Protocol

from ..monetdb.mal import MALBuilder, MALProgram, Var
from . import ast
from .lexer import SQLSyntaxError
from .params import ParamRef


class BindError(ValueError):
    """Name-resolution or typing failure during lowering."""


class SchemaProvider(Protocol):
    """What the binder needs to know about the database."""

    def has_table(self, table: str) -> bool: ...

    def columns(self, table: str) -> list[str]: ...

    def dictionary(self, table: str, column: str) -> Optional[str]: ...

    def dictionary_code(self, dictionary: str, literal: str) -> int: ...


#: AST nodes the binder treats as constants; Param compiles to a
#: ParamRef placeholder bound to a concrete value at execute time
_LITERAL_NODES = (ast.Literal, ast.DateLiteral, ast.Param)

_CMP_OPS = {"eq", "ne", "lt", "le", "gt", "ge"}
_CMP_TO_THETA = {"eq": "==", "ne": "!=", "lt": "<", "le": "<=",
                 "gt": ">", "ge": ">="}


@dataclass
class Bound:
    """One relation bound into the current pipeline."""

    alias: str
    table: Optional[str] = None               # base table name
    derived_columns: Optional[dict] = None    # derived: column -> Var
    cand: Optional[Var] = None                # selection candidate
    rowmap: Optional[Var] = None              # positions into cand space
    source_cache: dict = field(default_factory=dict)
    value_cache: dict = field(default_factory=dict)

    @property
    def is_base(self) -> bool:
        return self.table is not None


class Compiler:
    """Compiles one :class:`ast.Query` into a MAL program."""

    def __init__(self, schema: SchemaProvider, name: str = "query"):
        self.schema = schema
        self.b = MALBuilder(name)
        self.ctes: dict[str, dict] = {}

    # ===================================================================
    # entry point
    # ===================================================================

    def compile(self, query: ast.Query) -> MALProgram:
        for cte_name, cte_select in query.ctes:
            self.ctes[cte_name] = self._compile_derived(cte_select)
        outputs = self._compile_select(query.select)
        return self.b.returns(outputs)

    # ===================================================================
    # SELECT pipeline
    # ===================================================================

    def _compile_select(self, select: ast.Select) -> list[tuple[str, Var]]:
        bounds = self._bind_from(select)
        conjuncts = _flatten_and(select.where)
        residuals = self._apply_sargable(bounds, conjuncts)
        pipeline = _Pipeline(self, [bounds[0]])
        for join in select.joins:
            new_bound = self._bound_for(join.item, bounds)
            self._apply_join(pipeline, join, new_bound)
        pipeline.complete = True
        self._apply_residuals(pipeline, residuals)
        outputs = self._projection_phase(pipeline, select)
        outputs = self._order_limit_phase(select, outputs)
        return outputs

    def _compile_derived(self, select: ast.Select) -> dict:
        outputs = self._compile_select(select)
        return {name: var for name, var in outputs}

    # -- FROM binding -----------------------------------------------------

    def _bind_from(self, select: ast.Select) -> list[Bound]:
        if select.base is None:
            raise BindError("SELECT without FROM")
        items = [select.base] + [j.item for j in select.joins]
        bounds = []
        seen = set()
        for item in items:
            bound = self._make_bound(item)
            if bound.alias in seen:
                raise BindError(f"duplicate alias {bound.alias!r}")
            seen.add(bound.alias)
            bounds.append(bound)
        return bounds

    def _make_bound(self, item: ast.FromItem) -> Bound:
        if isinstance(item, ast.SubqueryRef):
            columns = self._compile_derived(item.query)
            return Bound(alias=item.alias, derived_columns=columns)
        if item.table in self.ctes:
            return Bound(alias=item.alias,
                         derived_columns=dict(self.ctes[item.table]))
        if not self.schema.has_table(item.table):
            raise BindError(f"unknown table {item.table!r}")
        return Bound(alias=item.alias, table=item.table)

    def _bound_for(self, item: ast.FromItem, bounds: list[Bound]) -> Bound:
        alias = item.alias
        for bound in bounds:
            if bound.alias == alias:
                return bound
        raise BindError(f"unbound alias {alias!r}")  # pragma: no cover

    # -- column resolution ---------------------------------------------------

    def _bound_columns(self, bound: Bound) -> list[str]:
        if bound.is_base:
            return self.schema.columns(bound.table)
        return list(bound.derived_columns)

    def _resolve(self, column: ast.Column,
                 bounds: list[Bound]) -> tuple[Bound, str]:
        if column.qualifier is not None:
            for bound in bounds:
                if bound.alias == column.qualifier:
                    if column.name not in self._bound_columns(bound):
                        raise BindError(f"no column {column}")
                    return bound, column.name
            raise BindError(f"unknown alias {column.qualifier!r}")
        matches = [
            bound for bound in bounds
            if column.name in self._bound_columns(bound)
        ]
        if not matches:
            raise BindError(f"unknown column {column.name!r}")
        if len(matches) > 1:
            raise BindError(f"ambiguous column {column.name!r}")
        return matches[0], column.name

    def _column_source(self, bound: Bound, column: str) -> Var:
        """Table-level (candidate-projected) value column."""
        if column in bound.source_cache:
            return bound.source_cache[column]
        if bound.is_base:
            base = self.b.bind(bound.table, column)
            if bound.cand is not None:
                base = self.b.emit(
                    "algebra", "projection", (bound.cand, base)
                )
        else:
            base = bound.derived_columns[column]
        bound.source_cache[column] = base
        return base

    # -- literals against dictionary columns --------------------------------------

    def _literal_for(self, bound: Bound, column: str, literal) -> object:
        if isinstance(literal, ast.Param):
            if literal.kind != "s":
                return ParamRef(literal.index)
            # resolve the dictionary at plan time, the code at bind time
            if not bound.is_base:
                raise BindError(
                    f"string literal compared with non-base "
                    f"column {column!r}"
                )
            dictionary = self.schema.dictionary(bound.table, column)
            if dictionary is None:
                raise BindError(
                    f"{bound.table}.{column} is not a string column"
                )
            return ParamRef(literal.index, (("dict", dictionary),))
        if isinstance(literal, ast.Literal):
            value = literal.value
        elif isinstance(literal, ast.DateLiteral):
            value = literal.value
        else:
            raise BindError(f"expected literal, got {literal!r}")
        if isinstance(value, str):
            if not bound.is_base:
                raise BindError(
                    f"string literal {value!r} compared with non-base "
                    f"column {column!r}"
                )
            dictionary = self.schema.dictionary(bound.table, column)
            if dictionary is None:
                raise BindError(f"{bound.table}.{column} is not a string column")
            return self.schema.dictionary_code(dictionary, value)
        return value

    # ===================================================================
    # WHERE: sargable selection chains
    # ===================================================================

    def _apply_sargable(self, bounds: list[Bound],
                        conjuncts: list[ast.Expr]) -> list[ast.Expr]:
        """Fold single-table predicates into candidate chains; return the
        residual conjuncts."""
        residuals = []
        local_residuals: dict[str, list[ast.Expr]] = {}
        for conjunct in conjuncts:
            aliases = self._aliases_of(conjunct, bounds)
            if len(aliases) == 1:
                bound = next(b for b in bounds if b.alias in aliases)
                if bound.is_base and self._is_sargable(conjunct, bound):
                    bound.cand = self._compile_sarg(bound, conjunct,
                                                    bound.cand)
                    continue
                local_residuals.setdefault(bound.alias, []).append(conjunct)
                continue
            residuals.append(conjunct)
        # table-local value-space predicates (e.g. l_commitdate <
        # l_receiptdate) fold into a rowmap before any join
        for bound in bounds:
            for predicate in local_residuals.get(bound.alias, []):
                pipeline = _Pipeline(self, [bound])
                mask = self._value_expr(pipeline, predicate, as_mask=True)
                positions = self.b.emit(
                    "algebra", "thetaselect", (mask, None, 0, "!=")
                )
                pipeline.remap(positions)
        return residuals

    def _aliases_of(self, expr: ast.Expr, bounds: list[Bound]) -> set:
        aliases: set[str] = set()

        def walk(node):
            if isinstance(node, ast.Column):
                bound, _ = self._resolve(node, bounds)
                aliases.add(bound.alias)
            elif isinstance(node, ast.BinOp):
                walk(node.left)
                walk(node.right)
            elif isinstance(node, (ast.Neg, ast.Not)):
                walk(node.operand)
            elif isinstance(node, ast.Between):
                walk(node.operand)
                walk(node.low)
                walk(node.high)
            elif isinstance(node, ast.InList):
                walk(node.operand)
            elif isinstance(node, ast.Case):
                walk(node.condition)
                walk(node.then)
                walk(node.otherwise)
            elif isinstance(node, ast.ExtractYear):
                walk(node.operand)
            elif isinstance(node, ast.Agg) and node.argument is not None:
                walk(node.argument)

        walk(expr)
        return aliases

    def _is_sargable(self, expr: ast.Expr, bound: Bound) -> bool:
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or"):
                return self._is_sargable(expr.left, bound) and \
                    self._is_sargable(expr.right, bound)
            if expr.op in _CMP_OPS:
                return (
                    isinstance(expr.left, ast.Column)
                    and isinstance(expr.right, _LITERAL_NODES)
                ) or (
                    isinstance(expr.right, ast.Column)
                    and isinstance(expr.left, _LITERAL_NODES)
                )
            return False
        if isinstance(expr, ast.Between):
            return isinstance(expr.operand, ast.Column) and isinstance(
                expr.low, _LITERAL_NODES
            ) and isinstance(expr.high, _LITERAL_NODES)
        if isinstance(expr, ast.InList):
            return isinstance(expr.operand, ast.Column)
        if isinstance(expr, ast.Not):
            return self._is_sargable(expr.operand, bound)
        return False

    def _compile_sarg(self, bound: Bound, expr: ast.Expr,
                      cand: Optional[Var], anti: bool = False) -> Var:
        """Candidate chain for a sargable predicate on one table."""
        if isinstance(expr, ast.Not):
            return self._compile_sarg(bound, expr.operand, cand, not anti)
        if isinstance(expr, ast.BinOp) and expr.op == "and" and not anti:
            left = self._compile_sarg(bound, expr.left, cand)
            return self._compile_sarg(bound, expr.right, left)
        if isinstance(expr, ast.BinOp) and expr.op == "or" and not anti:
            left = self._compile_sarg(bound, expr.left, cand)
            right = self._compile_sarg(bound, expr.right, cand)
            return self.b.emit("algebra", "oidunion", (left, right))
        if isinstance(expr, ast.BinOp) and expr.op in _CMP_OPS:
            column, op, literal = self._normalise_cmp(expr)
            src = self.b.bind(bound.table, column.name)
            value = self._literal_for(bound, column.name, literal)
            theta = _CMP_TO_THETA[op]
            if anti:
                theta = _CMP_TO_THETA[_INVERT[op]]
            return self.b.emit(
                "algebra", "thetaselect", (src, cand, value, theta)
            )
        if isinstance(expr, ast.Between):
            column = expr.operand
            src = self.b.bind(bound.table, column.name)
            lo = self._literal_for(bound, column.name, expr.low)
            hi = self._literal_for(bound, column.name, expr.high)
            return self.b.emit(
                "algebra", "select",
                (src, cand, lo, hi, True, True, anti != expr.negated),
            )
        if isinstance(expr, ast.InList):
            column = expr.operand
            src = self.b.bind(bound.table, column.name)
            negated = anti != expr.negated
            if negated:
                # NOT IN: chain of anti-equality selections
                current = cand
                for item in expr.items:
                    value = self._literal_for(bound, column.name, item)
                    current = self.b.emit(
                        "algebra", "thetaselect", (src, current, value, "!=")
                    )
                return current
            branches = [
                self.b.emit(
                    "algebra", "thetaselect",
                    (src, cand,
                     self._literal_for(bound, column.name, item), "=="),
                )
                for item in expr.items
            ]
            union = branches[0]
            for branch in branches[1:]:
                union = self.b.emit("algebra", "oidunion", (union, branch))
            return union
        raise BindError(f"cannot compile sargable predicate {expr!r}")

    @staticmethod
    def _normalise_cmp(expr: ast.BinOp):
        if isinstance(expr.left, ast.Column):
            return expr.left, expr.op, expr.right
        swapped = {"lt": "gt", "le": "ge", "gt": "lt", "ge": "le",
                   "eq": "eq", "ne": "ne"}[expr.op]
        return expr.right, swapped, expr.left

    # ===================================================================
    # joins
    # ===================================================================

    def _apply_join(self, pipeline: "_Pipeline", join: ast.Join,
                    new_bound: Bound) -> None:
        conjuncts = _flatten_and(join.condition)
        equality = None
        extras = []
        for conjunct in conjuncts:
            if (
                equality is None
                and isinstance(conjunct, ast.BinOp)
                and conjunct.op == "eq"
                and isinstance(conjunct.left, ast.Column)
                and isinstance(conjunct.right, ast.Column)
            ):
                sides = self._classify_join_sides(
                    pipeline, new_bound, conjunct
                )
                if sides is not None:
                    equality = sides
                    continue
            extras.append(conjunct)
        if equality is None:
            raise BindError(
                f"join ON must contain an equality between the two sides: "
                f"{join.condition!r}"
            )
        (left_col, right_col) = equality
        left_keys = pipeline.value_of_column(left_col)
        right_keys = _Pipeline(self, [new_bound]).value_of_column(right_col)
        if join.kind == "inner":
            lpos, rpos = self.b.emit(
                "algebra", "join", (left_keys, right_keys), n_results=2
            )
            pipeline.remap(lpos)
            new_pipeline = _Pipeline(self, [new_bound])
            new_pipeline.remap(rpos)
            pipeline.bounds.append(new_bound)
        elif join.kind in ("semi", "anti"):
            fn = "semijoin" if join.kind == "semi" else "antijoin"
            lpos = self.b.emit("algebra", fn, (left_keys, right_keys))
            pipeline.remap(lpos)
        else:  # pragma: no cover
            raise BindError(f"unknown join kind {join.kind!r}")
        if extras:
            if join.kind != "inner":
                raise BindError(
                    "semi/anti join ON supports only the equality; move "
                    "extra predicates into the subquery"
                )
            self._apply_residuals(pipeline, extras)

    def _classify_join_sides(self, pipeline, new_bound, conjunct):
        """Orient ``a.x = b.y`` as (current side, new side) columns."""
        current = pipeline.bounds
        try:
            left_bound, _ = self._resolve(conjunct.left,
                                          current + [new_bound])
            right_bound, _ = self._resolve(conjunct.right,
                                           current + [new_bound])
        except BindError:
            return None
        if left_bound in current and right_bound is new_bound:
            return conjunct.left, conjunct.right
        if right_bound in current and left_bound is new_bound:
            return conjunct.right, conjunct.left
        return None

    # ===================================================================
    # residual predicates
    # ===================================================================

    def _apply_residuals(self, pipeline: "_Pipeline",
                         residuals: list[ast.Expr]) -> None:
        applicable = [
            r for r in residuals
            if self._aliases_of(r, pipeline.bounds) <= pipeline.alias_set()
        ]
        pending = [r for r in residuals if r not in applicable]
        if pending and pipeline.complete:
            raise BindError(f"unplaceable predicates: {pending!r}")
        if not applicable:
            return
        mask = self._value_expr(pipeline, applicable[0], as_mask=True)
        for predicate in applicable[1:]:
            other = self._value_expr(pipeline, predicate, as_mask=True)
            mask = self.b.emit("batcalc", "and", (mask, other))
        positions = self.b.emit(
            "algebra", "thetaselect", (mask, None, 0, "!=")
        )
        pipeline.remap(positions)
        for predicate in applicable:
            residuals.remove(predicate)

    # ===================================================================
    # value-space expression compilation
    # ===================================================================

    def _value_expr(self, pipeline: "_Pipeline", expr: ast.Expr,
                    as_mask: bool = False):
        """Compile ``expr`` over the pipeline's current rows.

        Returns a Var (column) or a Python scalar.  With ``as_mask`` the
        result is a uint8 predicate column.
        """
        b = self.b
        if isinstance(expr, ast.Literal):
            if isinstance(expr.value, str):
                raise BindError(
                    f"string literal {expr.value!r} outside a comparison"
                )
            return expr.value
        if isinstance(expr, ast.DateLiteral):
            return expr.value
        if isinstance(expr, ast.Param):
            if expr.kind == "s":
                raise BindError("string literal outside a comparison")
            return ParamRef(expr.index)
        if isinstance(expr, ast.Column):
            return pipeline.value_of_column(expr)
        if isinstance(expr, ast.Neg):
            operand = self._value_expr(pipeline, expr.operand)
            if not isinstance(operand, Var):
                return -operand
            return b.emit("batcalc", "sub", (0, operand))
        if isinstance(expr, ast.ExtractYear):
            operand = self._value_expr(pipeline, expr.operand)
            if isinstance(operand, ParamRef):
                return operand.intdiv(10000)
            if not isinstance(operand, Var):
                return int(operand) // 10000
            return b.emit("batcalc", "intdiv", (operand, 10000))
        if isinstance(expr, ast.Case):
            condition = self._value_expr(pipeline, expr.condition,
                                         as_mask=True)
            then = self._value_expr(pipeline, expr.then)
            otherwise = self._value_expr(pipeline, expr.otherwise)
            return b.emit("batcalc", "ifthenelse",
                          (condition, then, otherwise))
        if isinstance(expr, ast.ScalarSubquery):
            return self._compile_scalar_subquery(expr.query)
        if isinstance(expr, ast.Between):
            lo = ast.BinOp("ge", expr.operand, expr.low)
            hi = ast.BinOp("le", expr.operand, expr.high)
            combined = ast.BinOp("and", lo, hi)
            if expr.negated:
                combined = ast.Not(combined)
            return self._value_expr(pipeline, combined, as_mask=True)
        if isinstance(expr, ast.InList):
            eqs = [ast.BinOp("eq", expr.operand, item)
                   for item in expr.items]
            combined = eqs[0]
            for eq in eqs[1:]:
                combined = ast.BinOp("or", combined, eq)
            if expr.negated:
                combined = ast.Not(combined)
            return self._value_expr(pipeline, combined, as_mask=True)
        if isinstance(expr, ast.Not):
            operand = self._value_expr(pipeline, expr.operand, as_mask=True)
            return b.emit("batcalc", "eq", (operand, 0))
        if isinstance(expr, ast.BinOp):
            if expr.op in ("and", "or"):
                left = self._value_expr(pipeline, expr.left, as_mask=True)
                right = self._value_expr(pipeline, expr.right, as_mask=True)
                return b.emit("batcalc", expr.op, (left, right))
            if expr.op in _CMP_OPS:
                left, right = self._compile_cmp_operands(pipeline, expr)
                if not isinstance(left, Var) and not isinstance(right, Var):
                    raise BindError("comparison of two constants")
                return b.emit("batcalc", expr.op, (left, right))
            # arithmetic
            left = self._value_expr(pipeline, expr.left)
            right = self._value_expr(pipeline, expr.right)
            if not isinstance(left, Var) and not isinstance(right, Var):
                return _fold(expr.op, left, right)
            return b.emit("batcalc", expr.op, (left, right))
        if isinstance(expr, ast.Agg):
            raise BindError("aggregate in a non-aggregate context")
        raise BindError(f"cannot compile expression {expr!r}")

    def _compile_cmp_operands(self, pipeline, expr: ast.BinOp):
        """Comparison operands with dictionary-code resolution."""
        left_lit = isinstance(expr.left, _LITERAL_NODES)
        right_lit = isinstance(expr.right, _LITERAL_NODES)
        if isinstance(expr.left, ast.Column) and right_lit:
            bound, column = self._resolve(expr.left, pipeline.bounds)
            return (
                pipeline.value_of_column(expr.left),
                self._literal_for(bound, column, expr.right),
            )
        if isinstance(expr.right, ast.Column) and left_lit:
            bound, column = self._resolve(expr.right, pipeline.bounds)
            return (
                self._literal_for(bound, column, expr.left),
                pipeline.value_of_column(expr.right),
            )
        return (
            self._value_expr(pipeline, expr.left),
            self._value_expr(pipeline, expr.right),
        )

    # ===================================================================
    # projection / aggregation phase
    # ===================================================================

    def _projection_phase(self, pipeline: "_Pipeline",
                          select: ast.Select) -> list[tuple[str, Var]]:
        has_aggs = any(
            _contains_agg(item.expr) for item in select.items
        ) or (select.having is not None)
        if select.group_by:
            return self._grouped_outputs(pipeline, select)
        if has_aggs:
            return self._scalar_outputs(pipeline, select)
        outputs = []
        for index, item in enumerate(select.items):
            var = self._value_expr(pipeline, item.expr)
            if not isinstance(var, Var):
                raise BindError(
                    "constant select items need an aggregate context"
                )
            outputs.append((_output_name(item, index), var))
        return outputs

    def _grouped_outputs(self, pipeline, select) -> list[tuple[str, Var]]:
        key_vars = [
            self._value_expr(pipeline, key) for key in select.group_by
        ]
        for var in key_vars:
            if not isinstance(var, Var):
                raise BindError("GROUP BY over a constant")
        gids, ngroups = self.b.emit(
            "group", "group", (key_vars[0],), n_results=2
        )
        for key_var in key_vars[1:]:
            gids, ngroups = self.b.emit(
                "group", "subgroup", (key_var, gids, ngroups), n_results=2
            )
        group_env = _GroupEnv(self, pipeline, select.group_by, key_vars,
                              gids, ngroups)
        outputs = []
        for index, item in enumerate(select.items):
            var = group_env.compile(item.expr)
            outputs.append((_output_name(item, index), var))
        if select.having is not None:
            mask = group_env.compile(select.having)
            positions = self.b.emit(
                "algebra", "thetaselect", (mask, None, 0, "!=")
            )
            outputs = [
                (name, self.b.emit("algebra", "projection",
                                   (positions, var)))
                for name, var in outputs
            ]
        return outputs

    def _scalar_outputs(self, pipeline, select) -> list[tuple[str, Var]]:
        env = _ScalarEnv(self, pipeline)
        outputs = []
        for index, item in enumerate(select.items):
            outputs.append((_output_name(item, index),
                            env.compile(item.expr)))
        return outputs

    def _compile_scalar_subquery(self, select: ast.Select):
        outputs = self._compile_select(select)
        if len(outputs) != 1:
            raise BindError("scalar subquery must produce one column")
        return outputs[0][1]

    # ===================================================================
    # ORDER BY / LIMIT
    # ===================================================================

    def _order_limit_phase(self, select: ast.Select, outputs):
        if select.order_by is not None:
            target = select.order_by.expr
            sort_index = None
            for index, (name, _var) in enumerate(outputs):
                if isinstance(target, ast.Column) and target.name == name:
                    sort_index = index
                    break
                if select.items[index].expr == target:
                    sort_index = index
                    break
            if sort_index is None:
                raise BindError(
                    "ORDER BY must reference an output column"
                )
            sort_var = outputs[sort_index][1]
            sorted_var, order = self.b.emit(
                "algebra", "sort", (sort_var, select.order_by.descending),
                n_results=2,
            )
            new_outputs = []
            for index, (name, var) in enumerate(outputs):
                if index == sort_index:
                    new_outputs.append((name, sorted_var))
                else:
                    new_outputs.append(
                        (name, self.b.emit("algebra", "projection",
                                           (order, var)))
                    )
            outputs = new_outputs
        if select.limit is not None:
            top = self.b.emit(
                "algebra", "firstn", (outputs[0][1], select.limit, True)
            )
            outputs = [
                (name, self.b.emit("algebra", "projection", (top, var)))
                for name, var in outputs
            ]
        return outputs


# =======================================================================
# helper environments
# =======================================================================

class _Pipeline:
    """The joined relation under construction."""

    def __init__(self, compiler: Compiler, bounds: list[Bound]):
        self.compiler = compiler
        self.bounds = bounds
        self.complete = False

    def alias_set(self) -> set:
        return {bound.alias for bound in self.bounds}

    def value_of_column(self, column: ast.Column) -> Var:
        bound, name = self.compiler._resolve(column, self.bounds)
        cached = bound.value_cache.get(name)
        if cached is not None:
            return cached
        source = self.compiler._column_source(bound, name)
        if bound.rowmap is not None:
            value = self.compiler.b.emit(
                "algebra", "projection", (bound.rowmap, source)
            )
        else:
            value = source
        bound.value_cache[name] = value
        return value

    def remap(self, positions: Var) -> None:
        """Fold new positions into every bound table's row map."""
        for bound in self.bounds:
            if bound.rowmap is None:
                bound.rowmap = positions
            else:
                bound.rowmap = self.compiler.b.emit(
                    "algebra", "projection", (positions, bound.rowmap)
                )
            bound.value_cache = {}


class _GroupEnv:
    """Compiles SELECT/HAVING expressions over a grouped relation."""

    def __init__(self, compiler, pipeline, group_exprs, key_vars, gids,
                 ngroups):
        self.compiler = compiler
        self.pipeline = pipeline
        self.group_exprs = list(group_exprs)
        self.key_vars = key_vars
        self.gids = gids
        self.ngroups = ngroups
        self._key_cache: dict[int, Var] = {}

    def compile(self, expr: ast.Expr):
        b = self.compiler.b
        for index, group_expr in enumerate(self.group_exprs):
            if expr == group_expr:
                if index not in self._key_cache:
                    self._key_cache[index] = b.emit(
                        "aggr", "submin",
                        (self.key_vars[index], self.gids, self.ngroups),
                    )
                return self._key_cache[index]
        if isinstance(expr, ast.Agg):
            if expr.func == "count" and expr.argument is None:
                return b.emit("aggr", "subcount", (self.gids, self.ngroups))
            argument = self.compiler._value_expr(self.pipeline,
                                                 expr.argument)
            if not isinstance(argument, Var):
                raise BindError("aggregate over a constant")
            if expr.func == "count":
                return b.emit("aggr", "subcount", (self.gids, self.ngroups))
            return b.emit(
                "aggr", f"sub{expr.func}",
                (argument, self.gids, self.ngroups),
            )
        if isinstance(expr, (ast.Literal, ast.DateLiteral)):
            return expr.value
        if isinstance(expr, ast.Param):
            if expr.kind == "s":
                raise BindError("string literal outside a comparison")
            return ParamRef(expr.index)
        if isinstance(expr, ast.BinOp):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if not isinstance(left, Var) and not isinstance(right, Var):
                return _fold(expr.op, left, right)
            if expr.op in _CMP_OPS or expr.op in ("and", "or"):
                return b.emit("batcalc", expr.op, (left, right))
            return b.emit("batcalc", expr.op, (left, right))
        if isinstance(expr, ast.ScalarSubquery):
            return self.compiler._compile_scalar_subquery(expr.query)
        if isinstance(expr, ast.Not):
            operand = self.compile(expr.operand)
            return b.emit("batcalc", "eq", (operand, 0))
        raise BindError(
            f"expression {expr!r} is neither a group key nor an aggregate"
        )


class _ScalarEnv:
    """Compiles ungrouped-aggregate SELECT items (scalar results)."""

    def __init__(self, compiler, pipeline):
        self.compiler = compiler
        self.pipeline = pipeline

    def compile(self, expr: ast.Expr):
        b = self.compiler.b
        if isinstance(expr, ast.Agg):
            if expr.func == "count" and expr.argument is None:
                anchor = self._anchor_column()
                return b.emit("aggr", "count", (anchor,))
            argument = self.compiler._value_expr(self.pipeline,
                                                 expr.argument)
            return b.emit("aggr", expr.func, (argument,))
        if isinstance(expr, (ast.Literal, ast.DateLiteral)):
            return expr.value
        if isinstance(expr, ast.Param):
            if expr.kind == "s":
                raise BindError("string literal outside a comparison")
            return ParamRef(expr.index)
        if isinstance(expr, ast.BinOp):
            left = self.compile(expr.left)
            right = self.compile(expr.right)
            if not isinstance(left, Var) and not isinstance(right, Var):
                return _fold(expr.op, left, right)
            return b.emit("calc", expr.op, (left, right))
        if isinstance(expr, ast.ScalarSubquery):
            return self.compiler._compile_scalar_subquery(expr.query)
        raise BindError(f"non-aggregate {expr!r} in a scalar select")

    def _anchor_column(self) -> Var:
        bound = self.pipeline.bounds[0]
        column = self.compiler._bound_columns(bound)[0]
        return self.pipeline.value_of_column(
            ast.Column(bound.alias, column)
        )


# =======================================================================
# small helpers
# =======================================================================

_INVERT = {"eq": "ne", "ne": "eq", "lt": "ge", "le": "gt", "gt": "le",
           "ge": "lt"}


def _flatten_and(expr: Optional[ast.Expr]) -> list[ast.Expr]:
    if expr is None:
        return []
    if isinstance(expr, ast.BinOp) and expr.op == "and":
        return _flatten_and(expr.left) + _flatten_and(expr.right)
    return [expr]


def _contains_agg(expr) -> bool:
    if isinstance(expr, ast.Agg):
        return True
    if isinstance(expr, ast.BinOp):
        return _contains_agg(expr.left) or _contains_agg(expr.right)
    if isinstance(expr, (ast.Neg, ast.Not)):
        return _contains_agg(expr.operand)
    if isinstance(expr, ast.Case):
        return any(
            _contains_agg(e)
            for e in (expr.condition, expr.then, expr.otherwise)
        )
    if isinstance(expr, ast.ExtractYear):
        return _contains_agg(expr.operand)
    return False


def _fold(op: str, left, right):
    if op == "add":
        return left + right
    if op == "sub":
        return left - right
    if op == "mul":
        return left * right
    if op == "div":
        return left / right
    raise BindError(f"cannot fold constant op {op!r}")


def _output_name(item: ast.SelectItem, index: int) -> str:
    if item.alias:
        return item.alias
    if isinstance(item.expr, ast.Column):
        return item.expr.name
    if isinstance(item.expr, ast.Agg):
        return item.expr.func
    return f"col{index + 1}"


def compile_sql(text: str, schema: SchemaProvider,
                name: str = "query") -> MALProgram:
    """Parse and lower one SQL statement into a MAL program."""
    from .parser import parse

    return Compiler(schema, name=name).compile(parse(text))


_STRING_LITERAL = re.compile(r"('(?:[^']|'')*')")


def sql_cache_key(text: str) -> str:
    """Whitespace-insensitive identity of one SQL statement.

    Collapses runs of whitespace *outside* single-quoted string literals
    so reformatted but identical queries share a plan-cache entry,
    without ever touching literal contents.
    """
    parts = _STRING_LITERAL.split(text.strip())
    # even indices are non-literal segments, odd indices the literals
    return "".join(
        part if i % 2 else re.sub(r"\s+", " ", part)
        for i, part in enumerate(parts)
    )
