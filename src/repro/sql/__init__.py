"""``repro.sql`` — SQL frontend for the reproduction dialect (S5).

Lexer, recursive-descent parser, and the MAL lowering (binder, selection
chains, left-deep join pipeline, grouping, ordering).  See
:mod:`repro.sql.lower` for dialect notes and ARCHITECTURE.md §"repro.sql"
for where the frontend sits in the stack (its output is what the serve
layer's plan cache memoises).
"""

from .ast import Query, Select
from .lexer import SQLSyntaxError, tokenize
from .lower import BindError, Compiler, SchemaProvider, compile_sql
from .parser import parse

__all__ = [
    "BindError",
    "Compiler",
    "Query",
    "SQLSyntaxError",
    "SchemaProvider",
    "Select",
    "compile_sql",
    "parse",
    "tokenize",
]
