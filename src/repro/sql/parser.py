"""Recursive-descent parser for the reproduction SQL dialect."""

from __future__ import annotations

from . import ast
from .lexer import SQLSyntaxError, Token, tokenize
from ..tpch.schema import date_add_days, date_literal


class Parser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # -- token plumbing ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        return self.tokens[min(self.pos + offset, len(self.tokens) - 1)]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != "eof":
            self.pos += 1
        return token

    def accept(self, kind: str, value: str | None = None) -> Token | None:
        token = self.peek()
        if token.kind == kind and (value is None or token.value == value):
            return self.advance()
        return None

    def expect(self, kind: str, value: str | None = None) -> Token:
        token = self.accept(kind, value)
        if token is None:
            got = self.peek()
            want = value or kind
            raise SQLSyntaxError(
                f"expected {want!r}, got {got.value!r} at offset "
                f"{got.position}"
            )
        return token

    def at_kw(self, *words: str) -> bool:
        token = self.peek()
        return token.kind == "kw" and token.value in words

    # -- entry points ---------------------------------------------------------

    def parse_query(self) -> ast.Query:
        query = ast.Query()
        if self.accept("kw", "with"):
            while True:
                name = self.expect("ident").value
                self.expect("kw", "as")
                self.expect("punct", "(")
                query.ctes.append((name, self.parse_select()))
                self.expect("punct", ")")
                if not self.accept("punct", ","):
                    break
        query.select = self.parse_select()
        self.accept("punct", ";")
        self.expect("eof")
        return query

    def parse_select(self) -> ast.Select:
        self.expect("kw", "select")
        select = ast.Select()
        while True:
            expr = self.parse_expr()
            alias = None
            if self.accept("kw", "as"):
                alias = self.expect("ident").value
            elif self.peek().kind == "ident":
                alias = self.advance().value
            select.items.append(ast.SelectItem(expr, alias))
            if not self.accept("punct", ","):
                break
        self.expect("kw", "from")
        select.base = self.parse_from_item()
        while True:
            kind = None
            if self.accept("kw", "semi"):
                kind = "semi"
            elif self.accept("kw", "anti"):
                kind = "anti"
            elif self.at_kw("inner"):
                self.advance()
                kind = "inner"
            elif self.at_kw("join"):
                kind = "inner"
            if kind is None:
                break
            self.expect("kw", "join")
            item = self.parse_from_item()
            self.expect("kw", "on")
            condition = self.parse_expr()
            select.joins.append(ast.Join(kind, item, condition))
        if self.accept("punct", ","):
            got = self.peek()
            raise SQLSyntaxError(
                "comma joins are not part of this dialect; use explicit "
                f"JOIN ... ON (at offset {got.position})"
            )
        if self.accept("kw", "where"):
            select.where = self.parse_expr()
        if self.accept("kw", "group"):
            self.expect("kw", "by")
            while True:
                select.group_by.append(self.parse_expr())
                if not self.accept("punct", ","):
                    break
        if self.accept("kw", "having"):
            select.having = self.parse_expr()
        if self.accept("kw", "order"):
            self.expect("kw", "by")
            expr = self.parse_expr()
            descending = False
            if self.accept("kw", "desc"):
                descending = True
            else:
                self.accept("kw", "asc")
            if self.accept("punct", ","):
                raise SQLSyntaxError(
                    "multi-column sorting is not supported (paper App. A)"
                )
            select.order_by = ast.OrderSpec(expr, descending)
        if self.accept("kw", "limit"):
            select.limit = int(self.expect("int").value)
        return select

    def parse_from_item(self) -> ast.FromItem:
        if self.accept("punct", "("):
            sub = self.parse_select()
            self.expect("punct", ")")
            alias = self.expect("ident").value
            return ast.SubqueryRef(sub, alias)
        table = self.expect("ident").value
        alias = table
        if self.peek().kind == "ident":
            alias = self.advance().value
        return ast.TableRef(table, alias)

    # -- expressions (precedence climbing) ------------------------------------

    def parse_expr(self) -> ast.Expr:
        return self.parse_or()

    def parse_or(self) -> ast.Expr:
        left = self.parse_and()
        while self.accept("kw", "or"):
            left = ast.BinOp("or", left, self.parse_and())
        return left

    def parse_and(self) -> ast.Expr:
        left = self.parse_not()
        while self.accept("kw", "and"):
            left = ast.BinOp("and", left, self.parse_not())
        return left

    def parse_not(self) -> ast.Expr:
        if self.accept("kw", "not"):
            return ast.Not(self.parse_not())
        return self.parse_comparison()

    def parse_comparison(self) -> ast.Expr:
        left = self.parse_additive()
        token = self.peek()
        if token.kind == "punct" and token.value in (
            "=", "<>", "!=", "<", "<=", ">", ">=",
        ):
            self.advance()
            op = {"=": "eq", "<>": "ne", "!=": "ne", "<": "lt", "<=": "le",
                  ">": "gt", ">=": "ge"}[token.value]
            return ast.BinOp(op, left, self.parse_additive())
        negated = bool(self.accept("kw", "not"))
        if self.accept("kw", "between"):
            low = self.parse_additive()
            self.expect("kw", "and")
            high = self.parse_additive()
            return ast.Between(left, low, high, negated)
        if self.accept("kw", "in"):
            self.expect("punct", "(")
            items = [self.parse_additive()]
            while self.accept("punct", ","):
                items.append(self.parse_additive())
            self.expect("punct", ")")
            return ast.InList(left, tuple(items), negated)
        if negated:
            raise SQLSyntaxError(
                f"dangling NOT near offset {self.peek().position}"
            )
        return left

    def parse_additive(self) -> ast.Expr:
        left = self.parse_multiplicative()
        while True:
            if self.accept("punct", "+"):
                left = ast.BinOp("add", left, self.parse_multiplicative())
            elif self.accept("punct", "-"):
                left = ast.BinOp("sub", left, self.parse_multiplicative())
            else:
                return left

    def parse_multiplicative(self) -> ast.Expr:
        left = self.parse_primary()
        while True:
            if self.accept("punct", "*"):
                left = ast.BinOp("mul", left, self.parse_primary())
            elif self.accept("punct", "/"):
                left = ast.BinOp("div", left, self.parse_primary())
            else:
                return left

    def parse_primary(self) -> ast.Expr:
        token = self.peek()
        if self.accept("punct", "-"):
            return ast.Neg(self.parse_primary())
        if self.accept("punct", "("):
            if self.at_kw("select"):
                sub = self.parse_select()
                self.expect("punct", ")")
                return ast.ScalarSubquery(sub)
            expr = self.parse_expr()
            self.expect("punct", ")")
            return expr
        if token.kind == "int":
            self.advance()
            return ast.Literal(int(token.value))
        if token.kind == "float":
            self.advance()
            return ast.Literal(float(token.value))
        if token.kind == "string":
            self.advance()
            return ast.Literal(token.value)
        if token.kind == "param":
            self.advance()
            return ast.Param(int(token.value[:-1]), token.value[-1])
        if self.accept("kw", "date"):
            value = date_literal(self.expect("string").value)
            return self._maybe_interval(value)
        if self.accept("kw", "case"):
            self.expect("kw", "when")
            condition = self.parse_expr()
            self.expect("kw", "then")
            then = self.parse_expr()
            otherwise = ast.Literal(0)
            if self.accept("kw", "else"):
                otherwise = self.parse_expr()
            self.expect("kw", "end")
            return ast.Case(condition, then, otherwise)
        if self.accept("kw", "extract"):
            self.expect("punct", "(")
            self.expect("kw", "year")
            self.expect("kw", "from")
            operand = self.parse_expr()
            self.expect("punct", ")")
            return ast.ExtractYear(operand)
        for agg in ("sum", "avg", "min", "max", "count"):
            if self.accept("kw", agg):
                self.expect("punct", "(")
                if agg == "count" and self.accept("punct", "*"):
                    self.expect("punct", ")")
                    return ast.Agg("count", None)
                argument = self.parse_expr()
                self.expect("punct", ")")
                return ast.Agg(agg, argument)
        if token.kind == "ident":
            self.advance()
            if self.accept("punct", "."):
                name = self.expect("ident").value
                return ast.Column(token.value, name)
            return ast.Column(None, token.value)
        raise SQLSyntaxError(
            f"unexpected token {token.value!r} at offset {token.position}"
        )

    def _maybe_interval(self, value: int) -> ast.DateLiteral:
        """``DATE '...' [+|-] INTERVAL 'n' DAY`` folded at parse time."""
        sign = 0
        if self.peek().kind == "punct" and self.peek().value in ("+", "-"):
            if self.peek(1).kind == "kw" and self.peek(1).value == "interval":
                sign = 1 if self.advance().value == "+" else -1
        if sign and self.accept("kw", "interval"):
            days = int(self.expect("string").value)
            unit = self.expect("kw").value
            if unit == "day":
                value = date_add_days(value, sign * days)
            elif unit == "month":
                value = date_add_days(value, sign * days * 30)
            elif unit == "year":
                value = value + sign * days * 10000
            else:
                raise SQLSyntaxError(f"unsupported interval unit {unit!r}")
        return ast.DateLiteral(value)


def parse(text: str) -> ast.Query:
    """Parse one SQL statement into an AST."""
    return Parser(text).parse_query()
