"""Abstract syntax tree for the reproduction SQL dialect.

The dialect covers the Appendix-A-modified TPC-H workload in
pre-decorrelated form (DESIGN.md §2): explicit left-deep ``JOIN ... ON``
chains, ``SEMI JOIN`` / ``ANTI JOIN`` for (de-correlated) EXISTS / NOT
EXISTS, derived tables, CTEs, uncorrelated scalar subqueries, CASE
expressions, BETWEEN / IN lists, and single-column ORDER BY.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union


# -- expressions -------------------------------------------------------------

@dataclass(frozen=True)
class Literal:
    value: object  # int | float | str


@dataclass(frozen=True)
class DateLiteral:
    """``DATE 'YYYY-MM-DD' [+/- INTERVAL 'n' DAY]`` -> YYYYMMDD int."""

    value: int


@dataclass(frozen=True)
class Param:
    """Bind parameter ``?<index><kind>`` standing in for a literal.

    Produced by :func:`repro.sql.params.parameterise`; ``kind`` mirrors
    the literal it replaced: ``i`` int, ``f`` float, ``s`` string,
    ``d`` date (already folded to a YYYYMMDD int).  Identical literals
    share one index, so frozen-AST equality between occurrences — which
    the binder relies on for group keys and ORDER BY — is preserved.
    """

    index: int
    kind: str


@dataclass(frozen=True)
class Column:
    qualifier: Optional[str]
    name: str

    def __str__(self) -> str:
        return f"{self.qualifier}.{self.name}" if self.qualifier else self.name


@dataclass(frozen=True)
class BinOp:
    op: str  # + - * / and or = <> < <= > >=
    left: "Expr"
    right: "Expr"


@dataclass(frozen=True)
class Neg:
    operand: "Expr"


@dataclass(frozen=True)
class Not:
    operand: "Expr"


@dataclass(frozen=True)
class Between:
    operand: "Expr"
    low: "Expr"
    high: "Expr"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    operand: "Expr"
    items: tuple
    negated: bool = False


@dataclass(frozen=True)
class Case:
    condition: "Expr"
    then: "Expr"
    otherwise: "Expr"


@dataclass(frozen=True)
class Agg:
    func: str             # sum | avg | min | max | count
    argument: Optional["Expr"]  # None for COUNT(*)


@dataclass(frozen=True)
class ExtractYear:
    operand: "Expr"


@dataclass(frozen=True)
class ScalarSubquery:
    query: "Select"


Expr = Union[
    Literal, DateLiteral, Param, Column, BinOp, Neg, Not, Between, InList,
    Case, Agg, ExtractYear, ScalarSubquery,
]


# -- relations ----------------------------------------------------------------

@dataclass(frozen=True)
class TableRef:
    table: str
    alias: str


@dataclass(frozen=True)
class SubqueryRef:
    query: "Select"
    alias: str


FromItem = Union[TableRef, SubqueryRef]


@dataclass(frozen=True)
class Join:
    kind: str  # inner | semi | anti
    item: FromItem
    condition: Expr


@dataclass(frozen=True)
class SelectItem:
    expr: Expr
    alias: Optional[str]


@dataclass(frozen=True)
class OrderSpec:
    expr: Expr
    descending: bool


@dataclass
class Select:
    items: list[SelectItem] = field(default_factory=list)
    base: Optional[FromItem] = None
    joins: list[Join] = field(default_factory=list)
    where: Optional[Expr] = None
    group_by: list[Expr] = field(default_factory=list)
    having: Optional[Expr] = None
    order_by: Optional[OrderSpec] = None
    limit: Optional[int] = None


@dataclass
class Query:
    """Top level: optional CTEs + a select."""

    ctes: list[tuple[str, Select]] = field(default_factory=list)
    select: Select = None
