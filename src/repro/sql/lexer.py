"""SQL lexer for the reproduction dialect.

Case-insensitive keywords, identifiers, integer/float literals, quoted
strings, ``DATE '...'`` literals (handled in the parser), and the usual
punctuation.  Comments: ``-- ...`` to end of line.
"""

from __future__ import annotations

from dataclasses import dataclass

KEYWORDS = {
    "select", "from", "where", "group", "by", "having", "order", "limit",
    "as", "and", "or", "not", "between", "in", "join", "inner", "semi",
    "anti", "on", "case", "when", "then", "else", "end", "asc", "desc",
    "sum", "avg", "min", "max", "count", "date", "with", "extract",
    "year", "interval", "day", "month", "exists", "distinct",
}

PUNCT = (
    "<=", ">=", "<>", "!=", "=", "<", ">", "(", ")", ",", "+", "-", "*",
    "/", ".", ";",
)


class SQLSyntaxError(ValueError):
    """Lexing or parsing failure with position context."""


@dataclass(frozen=True)
class Token:
    kind: str       # 'kw' | 'ident' | 'int' | 'float' | 'string' | 'punct' | 'eof'
    value: str
    position: int

    def __repr__(self) -> str:
        return f"{self.kind}:{self.value!r}"


def tokenize(text: str) -> list[Token]:
    tokens: list[Token] = []
    i, n = 0, len(text)
    while i < n:
        ch = text[i]
        if ch.isspace():
            i += 1
            continue
        if text.startswith("--", i):
            end = text.find("\n", i)
            i = n if end < 0 else end + 1
            continue
        if ch == "'":
            end = text.find("'", i + 1)
            if end < 0:
                raise SQLSyntaxError(f"unterminated string at offset {i}")
            tokens.append(Token("string", text[i + 1 : end], i))
            i = end + 1
            continue
        if ch == "?":
            # bind-parameter marker `?<index><kind>` where kind is one of
            # i(nt) f(loat) s(tring) d(ate) — emitted by the serve layer's
            # auto-parameteriser (sql/params.py), not ordinarily typed by
            # hand
            j = i + 1
            while j < n and text[j].isdigit():
                j += 1
            if j == i + 1 or j >= n or text[j] not in "ifsd":
                raise SQLSyntaxError(
                    f"malformed parameter marker at offset {i}"
                )
            tokens.append(Token("param", text[i + 1 : j + 1], i))
            i = j + 1
            continue
        if ch.isdigit() or (
            ch == "." and i + 1 < n and text[i + 1].isdigit()
        ):
            j = i
            seen_dot = False
            while j < n and (text[j].isdigit() or (text[j] == "." and not seen_dot)):
                if text[j] == ".":
                    # '1.' followed by non-digit is int + '.' punct
                    if j + 1 >= n or not text[j + 1].isdigit():
                        break
                    seen_dot = True
                j += 1
            word = text[i:j]
            tokens.append(Token("float" if "." in word else "int", word, i))
            i = j
            continue
        if ch.isalpha() or ch == "_":
            j = i
            while j < n and (text[j].isalnum() or text[j] == "_"):
                j += 1
            word = text[i:j]
            lowered = word.lower()
            kind = "kw" if lowered in KEYWORDS else "ident"
            tokens.append(Token(kind, lowered if kind == "kw" else word, i))
            i = j
            continue
        for punct in PUNCT:
            if text.startswith(punct, i):
                tokens.append(Token("punct", punct, i))
                i += len(punct)
                break
        else:
            raise SQLSyntaxError(f"unexpected character {ch!r} at offset {i}")
    tokens.append(Token("eof", "", n))
    return tokens
