"""Auto-parameterisation: literals become bind parameters at parse time.

The serve layer's plan cache used to key compiled plans on raw SQL
text, so a thousand clients sending ``WHERE o_orderdate >= '<their
date>'`` triggered a thousand compiles of the same query shape.  This
module normalises a statement's literals into positional bind
parameters *before* the cache key is computed:

* :func:`parameterise` rewrites the token stream — every int, float,
  string, and (folded) ``DATE '...' [± INTERVAL ...]`` literal becomes
  a ``?<index><kind>`` marker — and returns the canonical template
  text plus the extracted values.  Identical literals share one
  parameter index, so frozen-AST equality between occurrences (group
  keys, ORDER BY targets) survives the rewrite.
* The binder (``lower.py``) compiles :class:`repro.sql.ast.Param`
  nodes into :class:`ParamRef` placeholders that flow into MAL
  instruction arguments exactly where the literal value would sit,
  recording any plan-time arithmetic (negation, interval folds,
  dictionary lookups) as a replayable step list.
* :func:`bind_program` substitutes concrete values for every
  :class:`ParamRef` in a compiled template — including inside fused
  expression trees and morsel regions — producing the executable plan
  for one set of arguments.  A template without parameters binds to
  the *same* program object, so identity-based caching still works.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .lexer import SQLSyntaxError, Token, tokenize

# NOTE: the ``tpch.schema`` date helpers are imported inside the
# functions that need them — ``lower.py`` imports this module, and a
# top-level tpch import would close an import cycle through
# ``tpch.workload``.


class ParamBindError(ValueError):
    """The statement cannot be parameterised (the plan would need the
    concrete value at compile time); callers fall back to compiling the
    literal text."""


@dataclass(frozen=True)
class ParamRef:
    """A placeholder for parameter ``index`` inside a compiled plan.

    ``steps`` records plan-time arithmetic the binder performed on the
    literal it replaced — e.g. ``1 - ?0f`` folds to a ParamRef with a
    ``("sub~", 1)`` step — replayed over the concrete value at bind
    time by :meth:`apply`.  A ``("dict", name)`` step resolves a string
    parameter to its dictionary code.
    """

    index: int
    steps: tuple = ()

    # -- bind-time evaluation ------------------------------------------------

    def apply(self, value, schema=None):
        out = value
        for op, arg in self.steps:
            if op == "dict":
                out = schema.dictionary_code(arg, out)
            elif op == "neg":
                out = -out
            elif op == "add":
                out = out + arg
            elif op == "add~":
                out = arg + out
            elif op == "sub":
                out = out - arg
            elif op == "sub~":
                out = arg - out
            elif op == "mul":
                out = out * arg
            elif op == "mul~":
                out = arg * out
            elif op == "div":
                out = out / arg
            elif op == "div~":
                out = arg / out
            elif op == "intdiv":
                out = out // arg
            else:  # pragma: no cover - steps are built below
                raise ParamBindError(f"unknown parameter step {op!r}")
        return out

    # -- plan-time constant folding (mirrors _fold in lower.py) --------------

    def _step(self, op: str, arg) -> "ParamRef":
        if isinstance(arg, ParamRef):
            raise ParamBindError("arithmetic between two parameters")
        return ParamRef(self.index, self.steps + ((op, arg),))

    def intdiv(self, arg: int) -> "ParamRef":
        return ParamRef(self.index, self.steps + (("intdiv", arg),))

    def __neg__(self):
        return ParamRef(self.index, self.steps + (("neg", None),))

    def __add__(self, other):
        return self._step("add", other)

    def __radd__(self, other):
        return self._step("add~", other)

    def __sub__(self, other):
        return self._step("sub", other)

    def __rsub__(self, other):
        return self._step("sub~", other)

    def __mul__(self, other):
        return self._step("mul", other)

    def __rmul__(self, other):
        return self._step("mul~", other)

    def __truediv__(self, other):
        return self._step("div", other)

    def __rtruediv__(self, other):
        return self._step("div~", other)


# =======================================================================
# text -> (template, values)
# =======================================================================

_INTERVAL_UNITS = ("day", "month", "year")


def _fold_interval(value: int, sign: int, count: int, unit: str) -> int:
    """Replicate the parser's ``DATE ± INTERVAL`` arithmetic exactly."""
    from ..tpch.schema import date_add_days

    if unit == "day":
        return date_add_days(value, sign * count)
    if unit == "month":
        return date_add_days(value, sign * count * 30)
    return value + sign * count * 10000


def parameterise(text: str) -> "tuple[str, tuple]":
    """Rewrite ``text`` into a parameterised template + extracted values.

    The template re-tokenizes to the same statement with literals
    replaced by ``?<index><kind>`` markers; it doubles as the plan-cache
    key text (whitespace- and comment-insensitive by construction).
    Literals the plan genuinely depends on stay inline: the ``LIMIT``
    row count (the plan's ``firstn`` argument) and any date/interval
    shape the parser could not fold.
    """
    from ..tpch.schema import date_literal

    tokens = tokenize(text)
    rendered: list[str] = []
    values: list = []
    index_of: dict = {}

    def placeholder(kind: str, value) -> str:
        key = (kind, value)
        if key not in index_of:
            index_of[key] = len(values)
            values.append(value)
        return f"?{index_of[key]}{kind}"

    def verbatim(token: Token) -> str:
        if token.kind == "string":
            return f"'{token.value}'"
        if token.kind == "param":
            raise SQLSyntaxError(
                "parameter markers are internal; pass literal SQL"
            )
        return token.value

    i = 0
    while tokens[i].kind != "eof":
        token = tokens[i]
        if (token.kind == "kw" and token.value == "limit"
                and tokens[i + 1].kind == "int"):
            rendered.append("limit")
            rendered.append(tokens[i + 1].value)
            i += 2
            continue
        if (token.kind == "kw" and token.value == "date"
                and tokens[i + 1].kind == "string"):
            try:
                value = date_literal(tokens[i + 1].value)
            except (ValueError, KeyError):
                rendered.append("date")
                rendered.append(verbatim(tokens[i + 1]))
                i += 2
                continue
            j = i + 2
            if (tokens[j].kind == "punct" and tokens[j].value in ("+", "-")
                    and tokens[j + 1].kind == "kw"
                    and tokens[j + 1].value == "interval"
                    and tokens[j + 2].kind == "string"
                    and tokens[j + 2].value.isdigit()
                    and tokens[j + 3].kind == "kw"
                    and tokens[j + 3].value in _INTERVAL_UNITS):
                sign = 1 if tokens[j].value == "+" else -1
                value = _fold_interval(
                    value, sign, int(tokens[j + 2].value),
                    tokens[j + 3].value,
                )
                j += 4
            rendered.append(placeholder("d", value))
            i = j
            continue
        if token.kind == "int":
            rendered.append(placeholder("i", int(token.value)))
            i += 1
            continue
        if token.kind == "float":
            rendered.append(placeholder("f", float(token.value)))
            i += 1
            continue
        if token.kind == "string":
            rendered.append(placeholder("s", token.value))
            i += 1
            continue
        rendered.append(verbatim(token))
        i += 1
    return " ".join(rendered), tuple(values)


# =======================================================================
# (template program, values) -> executable program
# =======================================================================

def bind_program(program, values: tuple, schema):
    """Substitute concrete ``values`` for every ParamRef in ``program``.

    Rebuilds only what changed: a zero-parameter template returns the
    *same* program object (identity-cached plans stay identical), and
    untouched instructions/expression nodes are shared between the
    template and every bound copy.
    """
    changed = False
    instructions = []
    for instruction in program.instructions:
        bound = _bind_instruction(instruction, values, schema)
        changed = changed or bound is not instruction
        instructions.append(bound)
    if not changed:
        return program
    return replace(program, instructions=instructions)


def _bind_instruction(instruction, values, schema):
    args = tuple(_bind_arg(arg, values, schema) for arg in instruction.args)
    if all(new is old for new, old in zip(args, instruction.args)):
        return instruction
    return replace(instruction, args=args)


def _bind_arg(arg, values, schema):
    if isinstance(arg, ParamRef):
        return arg.apply(values[arg.index], schema)
    # fused expression trees and morsel regions carry nested payloads;
    # imported lazily to keep this module free of heavyweight deps
    from ..fuse.expr import FusedPipe

    if isinstance(arg, FusedPipe):
        return _bind_pipe(arg, values, schema)
    from ..morsel.passes import MorselRegion

    if isinstance(arg, MorselRegion):
        members = tuple(
            _bind_instruction(member, values, schema)
            for member in arg.members
        )
        if all(new is old for new, old in zip(members, arg.members)):
            return arg
        return replace(arg, members=members)
    return arg


def _bind_pipe(pipe, values, schema):
    from ..fuse.expr import FusedOutput, FusedPipe

    memo: dict = {}
    outputs = []
    changed = False
    for output in pipe.outputs:
        expr = _bind_node(output.expr, memo, values, schema)
        if expr is output.expr:
            outputs.append(output)
        else:
            outputs.append(FusedOutput(output.name, expr))
            changed = True
    if not changed:
        return pipe
    return FusedPipe(tuple(outputs), pipe.inputs)


def _bind_node(node, memo, values, schema):
    if id(node) in memo:
        return memo[id(node)]
    from ..fuse.expr import FConst, FOp, FSelect

    out = node
    if isinstance(node, FConst):
        if isinstance(node.value, ParamRef):
            out = FConst(node.value.apply(values[node.value.index], schema))
    elif isinstance(node, FOp):
        args = tuple(
            _bind_node(child, memo, values, schema) for child in node.args
        )
        if any(new is not old for new, old in zip(args, node.args)):
            out = FOp(node.op, args)
    elif isinstance(node, FSelect):
        child = _bind_node(node.child, memo, values, schema)
        lo = node.lo
        hi = node.hi
        if isinstance(lo, ParamRef):
            lo = lo.apply(values[lo.index], schema)
        if isinstance(hi, ParamRef):
            hi = hi.apply(values[hi.index], schema)
        if child is not node.child or lo is not node.lo or hi is not node.hi:
            out = FSelect(child, node.op, lo, hi, node.anti)
    memo[id(node)] = out
    return out
