"""Fused expression trees: the payload of a ``fuse.pipe`` instruction.

A fused region of element-wise MAL instructions is summarised as a small
DAG over the region's *inputs* (columns flowing in from outside) and
*constants* (literals baked into the original instructions).  Node kinds:

* :class:`FIn` — the i-th input column of the fused instruction,
* :class:`FConst` — a literal operand (``1`` in ``1 - l_discount``),
* :class:`FOp` — one ``batcalc`` operation (arithmetic, comparison,
  logical, ``ifthenelse``),
* :class:`FSelect` — a selection consuming an in-region value; its
  predicate vocabulary is the shared one of
  :func:`repro.kernels.selection.predicate_mask`.

The same tree drives every backend: the scalar engines evaluate it
directly (:func:`evaluate`), the Ocelot kernel generator compiles it
into a single-pass kernel (:mod:`repro.fuse.codegen`), and ``explain``
renders it inline (:meth:`FusedPipe.__repr__`).  Per-node result dtypes
follow exactly the rules the *unfused* operators use
(:func:`repro.monetdb.calc.calc_result_dtype` and friends), so fusing a
chain never changes its numeric result.

Shared sub-expressions are shared *objects* — the evaluator memoises by
object identity, which is what makes the single pass single-pass even
for diamond-shaped regions (Q1's ``1 - l_discount`` feeds two outputs).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..kernels.selection import predicate_mask
from ..monetdb.calc import CALC_FNS, COMPARE_FNS, calc_result_dtype

_OP_SYMBOL = {
    "add": "+", "sub": "-", "mul": "*", "div": "/", "intdiv": "//",
    "and": "&", "or": "|", "eq": "==", "ne": "!=", "lt": "<",
    "le": "<=", "gt": ">", "ge": ">=",
}


@dataclass(frozen=True)
class FIn:
    """The ``index``-th input column of the fused instruction."""

    index: int


@dataclass(frozen=True)
class FConst:
    """A literal operand baked into the fused kernel."""

    value: object


@dataclass(frozen=True)
class FOp:
    """One element-wise ``batcalc`` operation over child nodes."""

    op: str
    args: tuple


@dataclass(frozen=True)
class FSelect:
    """A selection over an in-region value column.

    ``op`` is the shared predicate vocabulary (``"<"`` ... ``"[]"``);
    the scalar engines materialise the qualifying positions as an oid
    list, the Ocelot kernel writes the paper's selection bitmap.
    """

    child: object
    op: str
    lo: object
    hi: object = None
    anti: bool = False


def node_dtype(node, input_dtypes) -> np.dtype:
    """Result dtype of ``node`` — the unfused operators' exact rules."""
    if isinstance(node, FIn):
        return np.dtype(input_dtypes[node.index])
    if isinstance(node, FConst):
        return np.min_scalar_type(node.value)
    if isinstance(node, FOp):
        if node.op in COMPARE_FNS:
            return np.dtype(np.uint8)
        if node.op == "ifthenelse":
            return np.result_type(
                node_dtype(node.args[1], input_dtypes),
                node_dtype(node.args[2], input_dtypes),
            )
        return calc_result_dtype(
            node_dtype(node.args[0], input_dtypes),
            node_dtype(node.args[1], input_dtypes),
            node.op,
        )
    raise TypeError(f"no value dtype for {type(node).__name__}")


def evaluate(node, inputs, memo: Optional[dict] = None):
    """Evaluate one node over the input arrays (scalar engines + the
    generated kernels' ``vec_fn`` both run through here).

    Every interior node casts to its :func:`node_dtype`, mirroring the
    per-operator ``astype`` of the unfused chain, so results agree with
    unfused execution bit for bit on the numpy backends.  ``FSelect``
    nodes return the boolean mask; the caller encodes it (oid list or
    bitmap) per its backend's selection convention.
    """
    if memo is None:
        memo = {}
    key = id(node)
    if key in memo:
        return memo[key]
    if isinstance(node, FIn):
        out = inputs[node.index]
    elif isinstance(node, FConst):
        out = node.value
    elif isinstance(node, FSelect):
        child = evaluate(node.child, inputs, memo)
        mask = predicate_mask(child, node.op, node.lo, node.hi)
        if node.anti:
            mask = ~mask
        out = mask
    elif isinstance(node, FOp):
        vals = [evaluate(a, inputs, memo) for a in node.args]
        dts = [
            v.dtype if isinstance(v, np.ndarray) else np.min_scalar_type(v)
            for v in vals
        ]
        if node.op == "ifthenelse":
            out = np.where(
                np.asarray(vals[0]) != 0, vals[1], vals[2]
            ).astype(np.result_type(dts[1], dts[2]), copy=False)
        elif node.op in COMPARE_FNS:
            out = COMPARE_FNS[node.op](vals[0], vals[1]).astype(np.uint8)
        else:
            dtype = calc_result_dtype(dts[0], dts[1], node.op)
            out = CALC_FNS[node.op](vals[0], vals[1]).astype(
                dtype, copy=False
            )
    else:
        raise TypeError(f"cannot evaluate {node!r}")
    memo[key] = out
    return out


def render(node, names) -> str:
    """Human-readable (and canonical) text of one expression node.

    ``names`` maps input slots to display names — the original MAL
    variables for ``explain``, canonical ``%i`` slots for the
    structural key.
    """
    if isinstance(node, FIn):
        return names[node.index]
    if isinstance(node, FConst):
        return repr(node.value)
    if isinstance(node, FSelect):
        bounds = render(node.child, names) + f" {node.op} {node.lo!r}"
        if node.hi is not None:
            bounds += f":{node.hi!r}"
        prefix = "antiselect" if node.anti else "select"
        return f"{prefix}({bounds})"
    if node.op == "ifthenelse":
        inner = ", ".join(render(a, names) for a in node.args)
        return f"if({inner})"
    a, b = (render(arg, names) for arg in node.args)
    return f"({a} {_OP_SYMBOL[node.op]} {b})"


@dataclass(frozen=True)
class FusedOutput:
    """One live output of a fused region.

    ``name`` is the original MAL variable, kept so downstream
    instructions (and ``explain``) reference the fused result without
    renaming.
    """

    name: str
    expr: object

    @property
    def is_select(self) -> bool:
        return isinstance(self.expr, FSelect)


@dataclass(frozen=True)
class FusedPipe:
    """The complete payload of one ``fuse.pipe`` instruction."""

    outputs: tuple          # of FusedOutput, in original program order
    inputs: tuple           # of Var, the external operand columns

    # -- identity ---------------------------------------------------------

    def structural_key(self) -> str:
        """Canonical text of the region's shape (kernel-cache key).

        Input slots are positional and constants are included — two
        regions share a generated kernel exactly when they compute the
        same expressions over the same operand layout.
        """
        slots = [f"%{i}" for i in range(len(self.inputs))]
        return ";".join(
            ("sel:" if o.is_select else "val:") + render(o.expr, slots)
            for o in self.outputs
        )

    def kernel_name(self) -> str:
        digest = hashlib.md5(self.structural_key().encode()).hexdigest()
        return f"fuse_{digest[:10]}"

    def node_count(self) -> int:
        """Unique operation nodes — the per-row work of the single pass."""
        seen: set[int] = set()

        def walk(node):
            if id(node) in seen:
                return
            if isinstance(node, FOp):
                seen.add(id(node))
                for arg in node.args:
                    walk(arg)
            elif isinstance(node, FSelect):
                seen.add(id(node))
                walk(node.child)

        for output in self.outputs:
            walk(output.expr)
        return len(seen)

    # -- rendering (explain) ------------------------------------------------

    def __repr__(self) -> str:
        names = [var.name for var in self.inputs]
        body = "; ".join(
            f"{o.name}={render(o.expr, names)}" for o in self.outputs
        )
        return "{" + body + "}"


def input_dtypes_of(inputs) -> list[np.dtype]:
    """Dtypes of the runtime operands (BATs or arrays) of a pipe call."""
    return [value.dtype for value in inputs]
