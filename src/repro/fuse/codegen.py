"""Kernel generation for fused regions.

Compiles a :class:`~repro.fuse.expr.FusedPipe` into **one** generated
:class:`~repro.cl.kernel.KernelDef`: an expression-interpreting inner
loop over the ``cl`` layer that reads every input column once, evaluates
the region's DAG in registers, and writes only the region's live
outputs — intermediates never touch memory.  Selection outputs are
written as the paper's little-endian selection bitmaps, exactly like
``select_bitmap`` (§4.1.1), so downstream operators cannot tell a fused
selection from a plain one.

Generated definitions are memoised in the process-wide
:data:`KERNEL_CACHE`, keyed by the tree's **structural hash**
(:meth:`FusedPipe.structural_key`): repeated shapes — the same query
re-run, or distinct queries sharing a chain shape — reuse one compiled
kernel per device program instead of re-generating.  ``cache.hits`` /
``cache.misses`` make the reuse observable in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cl import KernelDef, KernelWork, params
from ..kernels.selection import bitmap_nbytes
from .expr import FusedPipe, evaluate, render


@dataclass
class KernelCacheStats:
    hits: int = 0
    misses: int = 0


class KernelCache:
    """Structural-hash keyed cache of generated fused kernels."""

    def __init__(self):
        self._defs: dict[str, KernelDef] = {}
        self.stats = KernelCacheStats()

    def __len__(self) -> int:
        return len(self._defs)

    def kernel_for(self, spec: FusedPipe) -> KernelDef:
        key = spec.structural_key()
        definition = self._defs.get(key)
        if definition is not None:
            self.stats.hits += 1
            return definition
        self.stats.misses += 1
        definition = build_kernel(spec)
        self._defs[key] = definition
        return definition

    def clear(self) -> None:
        self._defs.clear()
        self.stats = KernelCacheStats()


def build_kernel(spec: FusedPipe) -> KernelDef:
    """One single-pass kernel definition for ``spec``."""
    n_out = len(spec.outputs)
    n_in = len(spec.inputs)
    outputs = spec.outputs
    signature = " ".join(
        [f"out:o{i}" for i in range(n_out)]
        + [f"in:i{j}" for j in range(n_in)]
        + ["scalar:n"]
    )

    def vec_fn(ctx, *args):
        outs = args[:n_out]
        columns = [a[: int(args[-1])] for a in args[n_out:n_out + n_in]]
        n = int(args[-1])
        memo: dict = {}
        for output, out in zip(outputs, outs):
            value = evaluate(output.expr, columns, memo)
            if output.is_select:
                packed = np.packbits(value, bitorder="little")
                out[: packed.size] = packed
                out[packed.size:] = 0
            else:
                np.copyto(out[:n], value, casting="unsafe")

    node_count = spec.node_count()

    def work_fn(ctx, *args):
        outs = args[:n_out]
        columns = args[n_out:n_out + n_in]
        n = int(args[-1])
        written = sum(
            bitmap_nbytes(n) if output.is_select
            else n * out.dtype.itemsize
            for output, out in zip(outputs, outs)
        )
        return KernelWork(
            elements=n,
            bytes_read=n * sum(c.dtype.itemsize for c in columns),
            bytes_written=written,
            ops=n * node_count,
        )

    slots = [f"i{j}" for j in range(n_in)]
    body = "\n".join(
        f"    o{i}[gid] = {render(output.expr, slots)};"
        for i, output in enumerate(outputs)
    )
    source = (
        f"__kernel void {spec.kernel_name()}"
        f"(/* {n_out} outputs, {n_in} inputs */ uint n) {{\n"
        f"    /* generated single-pass fused region */\n{body}\n}}\n"
    )
    return KernelDef(
        name=spec.kernel_name(),
        params=params(signature),
        vec_fn=vec_fn,
        work_fn=work_fn,
        source=source,
    )


#: process-wide cache: one generated definition per region shape,
#: shared by every device program that installs it
KERNEL_CACHE = KernelCache()
