"""``repro.fuse`` — the operator-fusion subsystem.

Per-operator execution pays a fixed kernel-launch plus an intermediate
result buffer for every MAL instruction, which dominates element-wise
``batcalc`` chains (Q1's ``1-d``, ``ep*(1-d)``, ``ep*(1-d)*(1+t)``).
This package removes that tax at **rewrite time** in three layers:

1. the **pass** (:mod:`repro.fuse.passes`) finds maximal DAG regions of
   fusable instructions whose intermediates have no external consumers
   and replaces each with one ``fuse.pipe`` instruction carrying the
   region's expression tree,
2. the **kernel generator** (:mod:`repro.fuse.codegen`) compiles a tree
   into one single-pass generated kernel, memoised by structural hash,
3. **dispatch** (:mod:`repro.fuse.dispatch`) executes ``fuse.pipe`` on
   every engine family: the scalar baselines, single-device Ocelot, the
   heterogeneous scheduler (which costs the fused op as one
   transfer-in/one-out with summed compute — fusion changes *placement
   decisions*, not just launch counts) and the sharded engine (fused
   instructions fan out unchanged; they stay element-wise per row).

Disable globally with ``REPRO_FUSION=off`` or per engine with the
``fusion=off`` spec flag (``db.connect("CPU:fusion=off")``).  See
ARCHITECTURE.md §"Fusion" for the pass -> codegen -> dispatch diagram.
"""

from .codegen import KERNEL_CACHE, KernelCache, build_kernel
from .expr import (
    FConst,
    FIn,
    FOp,
    FSelect,
    FusedOutput,
    FusedPipe,
    evaluate,
    node_dtype,
)
from .passes import (
    FUSABLE_CALC,
    MIN_REGION,
    count_pipes,
    fuse_program,
    fusion_enabled,
)

__all__ = [
    "FConst",
    "FIn",
    "FOp",
    "FSelect",
    "FUSABLE_CALC",
    "FusedOutput",
    "FusedPipe",
    "KERNEL_CACHE",
    "KernelCache",
    "MIN_REGION",
    "build_kernel",
    "count_pipes",
    "evaluate",
    "fuse_program",
    "fusion_enabled",
    "node_dtype",
]
