"""The fusion pass: collapse element-wise chains into ``fuse.pipe``.

A dataflow pass over a :class:`~repro.monetdb.mal.MALProgram` that finds
maximal DAG regions of fusable instructions — element-wise ``batcalc``
operations, plus ``algebra.select``/``algebra.thetaselect`` consuming an
in-region value — and replaces each region with **one** ``fuse.pipe``
instruction carrying the region's expression tree
(:class:`~repro.fuse.expr.FusedPipe`).

Safety rules, in order:

* an instruction only joins a region if every BAT operand is *known* to
  be a BAT (producer whitelist — a ``batcalc`` over an aggregate scalar
  variable stays unfused),
* a region is **sealed** the moment any non-member consumes one of its
  definitions; values consumed outside the region become *live outputs*
  of the pipe (written by the single pass), values consumed only inside
  become intermediates and are never materialised,
* a sealed region is split into **connected components** (instructions
  sharing a variable, transitively).  Element-wise operators require
  equal-length operands, so a connected component provably lives in one
  row space — the single row count its generated kernel iterates over;
  two unrelated chains (a lineitem predicate and a HAVING filter over
  an ngroups-wide column) never share a pass,
* selection members are terminal: their (oid/bitmap) result never feeds
  a calc node inside the same region — the region seals first,
* components below ``MIN_REGION`` instructions are left exactly in
  place (fusing a single operator saves nothing).

Each fused component replaces its members with one ``fuse.pipe`` at the
*last* member's position; every other instruction keeps its place.
That placement is safe by construction: operands are defined before
their consuming member, and the seal rule guarantees no external
consumer appears before the seal point.  The pass is **idempotent** —
a plan already containing ``fuse.pipe`` instructions is returned
unchanged.  It runs inside every engine's optimizer pipeline
(:meth:`repro.engines.EngineConfig.plan`), *before* the Ocelot
rewriter, which then reroutes ``fuse.pipe`` to ``ocelot.pipe`` — so
the serve layer's plan cache memoises fused plans and HET placement
traces replay over them.

The ``REPRO_FUSION`` environment variable (``off``/``0``/``false``)
globally disables the pass — the CI A/B job runs the whole TPC-H
correctness suite with it off so the non-fused path cannot rot.  Per
engine, every family accepts a ``fusion=off`` spec flag
(``db.connect("CPU:fusion=off")``) for side-by-side comparison.
"""

from __future__ import annotations

import os
from collections import Counter

from ..monetdb.backends import select_bounds_to_op
from ..monetdb.calc import CALC_OPS, COMPARE_FNS
from ..monetdb.mal import MALInstruction, MALProgram, Var
from .expr import FConst, FIn, FOp, FSelect, FusedOutput, FusedPipe

#: element-wise batcalc functions the pass may fold into a region
FUSABLE_CALC = (
    frozenset(CALC_OPS) | frozenset(COMPARE_FNS) | {"ifthenelse"}
)

#: minimum region size worth replacing with a fused instruction
MIN_REGION = 2

_SELECT_OPS = frozenset({"algebra.select", "algebra.thetaselect"})

#: which result positions of an operator are BAT-valued — the producer
#: whitelist that keeps scalar-valued variables (``aggr.sum``,
#: ``group.group``'s ngroups, ``calc.*``) out of fused regions
_BAT_RESULTS = {
    "sql.bind": (True,),
    "algebra.projection": (True,),
    "algebra.select": (True,),
    "algebra.thetaselect": (True,),
    "algebra.sort": (True, True),
    "algebra.join": (True, True),
    "algebra.thetajoin": (True, True),
    "algebra.semijoin": (True,),
    "algebra.antijoin": (True,),
    "algebra.oidunion": (True,),
    "algebra.oidintersect": (True,),
    "algebra.firstn": (True,),
    "bat.mirror": (True,),
    "group.group": (True, False),
    "group.subgroup": (True, False),
    "aggr.subsum": (True,),
    "aggr.submin": (True,),
    "aggr.submax": (True,),
    "aggr.subcount": (True,),
    "aggr.subavg": (True,),
}


def fusion_enabled() -> bool:
    """Global switch: ``REPRO_FUSION=off|0|false`` disables the pass."""
    return os.environ.get("REPRO_FUSION", "on").strip().lower() not in (
        "off", "0", "false", "no",
    )


def _bat_result_flags(instruction: MALInstruction) -> tuple:
    if instruction.module in ("batcalc", "fuse"):
        return (True,) * len(instruction.results)
    return _BAT_RESULTS.get(
        instruction.op, (False,) * len(instruction.results)
    )


def _literal(arg) -> bool:
    return not isinstance(arg, Var)


def fuse_program(program: MALProgram,
                 min_region: int = MIN_REGION) -> MALProgram:
    """Rewrite ``program``, replacing fusable regions with ``fuse.pipe``."""
    instructions = program.instructions
    if any(i.module == "fuse" for i in instructions):
        return program     # already fused: the pass is a no-op
    result_vars = {var.name for _, var in program.result_columns}
    total_uses: Counter = Counter()
    bat_vars: set[str] = set()
    for instruction in instructions:
        for arg in instruction.args:
            if isinstance(arg, Var):
                total_uses[arg.name] += 1
        # SSA: producers precede consumers, so the full set is exactly
        # what incremental availability would have been at each use
        for var, is_bat in zip(
            instruction.results, _bat_result_flags(instruction)
        ):
            if is_bat:
                bat_vars.add(var.name)

    # -- phase 1: sealed super-regions (member indices) ---------------------
    regions: list[list[int]] = []
    members: list[int] = []
    region_defs: set[str] = set()       # all member result variables
    select_defs: set[str] = set()       # results of fused selections

    def classify(instruction: MALInstruction):
        """``"calc"`` / ``"select"`` if the instruction can join the
        open region (or start one, for calcs) right now, else ``None``."""
        if instruction.module == "batcalc" \
                and instruction.function in FUSABLE_CALC \
                and len(instruction.results) == 1:
            var_args = instruction.var_args()
            if not var_args:
                return None
            if any(a.name in select_defs for a in var_args):
                return None        # selection results are terminal
            if all(a.name in bat_vars for a in var_args):
                return "calc"
            return None
        if instruction.op in _SELECT_OPS:
            args = instruction.args
            src = args[0]
            if not isinstance(src, Var) or src.name not in region_defs \
                    or src.name in select_defs:
                return None        # only selections over in-region values
            if args[1] is not None:     # candidate-constrained: keep whole
                return None
            if any(not _literal(a) for a in args[2:]):
                return None
            return "select"
        return None

    def seal():
        if members:
            regions.append(list(members))
        members.clear()
        region_defs.clear()
        select_defs.clear()

    for index, instruction in enumerate(instructions):
        kind = classify(instruction)
        if members and kind is None and any(
            isinstance(a, Var) and a.name in region_defs
            for a in instruction.args
        ):
            # a non-member consumes a region value: seal the region so
            # its live outputs materialise before this consumer
            seal()
            kind = classify(instruction)
        if kind is not None:
            members.append(index)
            region_defs.add(instruction.results[0].name)
            if kind == "select":
                select_defs.add(instruction.results[0].name)
    seal()

    # -- phase 2: connected components within each sealed region ------------
    # (shared variables, transitively: element-wise operators require
    # equal-length operands, so each component lives in one row space)
    components: list[list[int]] = []
    for region in regions:
        components.extend(_connected_components(region, instructions))

    # -- phase 3: emit, collapsing each large-enough component to one
    # fuse.pipe at its last member's position --------------------------------
    fused_members: set[int] = set()
    pipe_at: dict[int, MALInstruction] = {}
    for component in components:
        if len(component) < min_region:
            continue
        pipe = _build_pipe(
            [instructions[i] for i in component], total_uses, result_vars
        )
        if pipe is None:
            continue
        fused_members.update(component)
        pipe_at[component[-1]] = pipe

    if not pipe_at:
        return program
    out = MALProgram(
        name=program.name,
        result_columns=list(program.result_columns),
    )
    for index, instruction in enumerate(instructions):
        pipe = pipe_at.get(index)
        if pipe is not None:
            out.instructions.append(pipe)
        elif index not in fused_members:
            out.instructions.append(instruction)
    return out


def _connected_components(region: list[int], instructions) -> list[list[int]]:
    """Split one sealed region into variable-connected components."""
    parent: dict[str, str] = {}

    def find(name: str) -> str:
        root = name
        while parent.setdefault(root, root) != root:
            root = parent[root]
        parent[name] = root
        return root

    def union(a: str, b: str) -> None:
        parent[find(a)] = find(b)

    for index in region:
        instruction = instructions[index]
        names = [instruction.results[0].name] + [
            a.name for a in instruction.var_args()
        ]
        for other in names[1:]:
            union(names[0], other)
    grouped: dict[str, list[int]] = {}
    for index in region:
        root = find(instructions[index].results[0].name)
        grouped.setdefault(root, []).append(index)
    return list(grouped.values())


def _build_pipe(members, total_uses, result_vars):
    """One ``fuse.pipe`` instruction for a closed region (or ``None``
    when the region has no live output — emit unchanged, stay safe)."""
    exprs: dict[str, object] = {}
    inputs: list[Var] = []
    input_index: dict[str, int] = {}

    def as_node(arg):
        if isinstance(arg, Var):
            node = exprs.get(arg.name)
            if node is not None:
                return node
            slot = input_index.get(arg.name)
            if slot is None:
                slot = len(inputs)
                input_index[arg.name] = slot
                inputs.append(arg)
            return FIn(slot)
        return FConst(arg)

    for member in members:
        if member.module == "batcalc":
            node = FOp(
                member.function, tuple(as_node(a) for a in member.args)
            )
        elif member.function == "thetaselect":
            src, _cand, value, op = member.args
            node = FSelect(as_node(src), op, value)
        else:
            src, _cand, lo, hi, li, hi_incl, anti = member.args
            op, lo_v, hi_v = select_bounds_to_op(
                lo, hi, bool(li), bool(hi_incl)
            )
            node = FSelect(as_node(src), op, lo_v, hi_v, bool(anti))
        exprs[member.results[0].name] = node

    internal: Counter = Counter()
    for member in members:
        for arg in member.args:
            if isinstance(arg, Var):
                internal[arg.name] += 1
    outputs, out_vars = [], []
    for member in members:
        var = member.results[0]
        external = total_uses[var.name] - internal[var.name]
        if external > 0 or var.name in result_vars:
            outputs.append(FusedOutput(var.name, exprs[var.name]))
            out_vars.append(var)
    if not outputs:
        return None
    spec = FusedPipe(outputs=tuple(outputs), inputs=tuple(inputs))
    return MALInstruction(
        tuple(out_vars), "fuse", "pipe", (spec,) + tuple(inputs)
    )


def count_pipes(program: MALProgram) -> int:
    """Number of fused instructions in a plan (test helper).

    Counts top-level ``fuse.pipe`` instructions plus any absorbed into
    ``morsel.run`` regions by the later morsel pass (a pipe inside a
    region is still one fused kernel launch per morsel)."""
    count = sum(1 for i in program.instructions if i.op == "fuse.pipe")
    for instruction in program.instructions:
        if instruction.op == "morsel.run":
            spec = instruction.args[0]
            count += sum(
                1 for member in spec.members if member.op == "fuse.pipe"
            )
    return count
