"""Backend dispatch of ``fuse.pipe``.

Two executors cover every engine family:

* :func:`op_pipe` — Ocelot host code (registered as ``ocelot.pipe`` in
  :data:`repro.ocelot.operators.HOST_CODE`): installs the generated
  kernel into the device program on first use and issues **one** launch
  that writes all live outputs.  The single-device backends, the
  heterogeneous scheduler (which places or fans out the fused op as a
  unit) and Ocelot-childed shards all run this.
* :func:`monetdb_pipe` — the scalar engines (MS/MP): evaluates the tree
  over the host arrays in one pass and charges **one** operator cost
  (work = rows x unique nodes) instead of one materialisation per chain
  link.

Selection outputs follow each backend's native convention — oid lists
on MonetDB, selection bitmaps on Ocelot — so consumers downstream see
exactly what the unfused ``select`` would have produced.
"""

from __future__ import annotations

import numpy as np

from ..kernels.selection import bitmap_nbytes
from ..monetdb.bat import BAT, OID_DTYPE, Role, make_bat, oid_bat
from .codegen import KERNEL_CACHE
from .expr import FusedPipe, evaluate, node_dtype


def _rows_of(inputs) -> int:
    for value in inputs:
        if isinstance(value, BAT):
            return value.count
    raise TypeError("fuse.pipe needs at least one BAT operand")


# ---------------------------------------------------------------------------
# Ocelot host code (single generated launch)
# ---------------------------------------------------------------------------

def op_pipe(engine, spec: FusedPipe, *inputs):
    """Run one fused region as a single generated kernel launch."""
    n = _rows_of(inputs)
    definition = KERNEL_CACHE.kernel_for(spec)
    if definition.name not in engine.program:
        engine.program.add(definition)
    in_bufs = [engine.buffer_of(b) for b in inputs]
    in_dtypes = [b.dtype for b in inputs]
    out_bufs = []
    for output in spec.outputs:
        if output.is_select:
            out_bufs.append(
                engine.result_buffer(
                    bitmap_nbytes(n), np.uint8, tag="pipe_bm"
                )
            )
        else:
            out_bufs.append(
                engine.result_buffer(
                    max(n, 1),
                    node_dtype(output.expr, in_dtypes),
                    tag="pipe_val",
                )
            )
    engine.launch(definition.name, *out_bufs, *in_bufs, n)
    results = tuple(
        engine.device_bat(buf, Role.BITMAP, count=n)
        if output.is_select
        else engine.device_bat(buf, Role.VALUES, count=n)
        for output, buf in zip(spec.outputs, out_bufs)
    )
    return results[0] if len(results) == 1 else results


# ---------------------------------------------------------------------------
# MonetDB scalar engines (one-pass host evaluation)
# ---------------------------------------------------------------------------

def monetdb_pipe(backend, spec: FusedPipe, *inputs):
    """Execute one fused region on a MonetDB baseline backend."""
    from ..monetdb.costmodel import OpCost

    arrays = [
        value.values if isinstance(value, BAT) else value
        for value in inputs
    ]
    n = _rows_of(inputs)
    model = backend.model
    memo: dict = {}
    results, merge_bytes, extra_work = [], 0, 0.0
    for output in spec.outputs:
        value = evaluate(output.expr, arrays, memo)
        if output.is_select:
            oids = np.nonzero(value)[0].astype(OID_DTYPE)
            extra_work += model.ns(oids.size, model.select_result_ns)
            merge_bytes += oids.nbytes
            results.append(oid_bat(oids))
        else:
            column = np.ascontiguousarray(value)
            merge_bytes += column.nbytes
            results.append(make_bat(column))
    backend._charge(
        OpCost(
            op="fuse.pipe",
            work=model.ns(n * spec.node_count(), model.calc_ns)
            + extra_work,
            merge_bytes=merge_bytes,
        )
    )
    return results[0] if len(results) == 1 else tuple(results)
