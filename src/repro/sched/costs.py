"""Per-instruction cost estimation from measured device profiles.

The placement policy needs a *relative* ranking of the devices for one
MAL instruction, not exact times, so every operator is reduced to a
coarse :class:`OpShape` — streamed bytes, gathered bytes, atomic traffic
and launch count — and converted to seconds purely through the
:class:`~repro.ocelot.autotune.DeviceCharacteristics` that
``probe_device`` measured.  Nothing here reads a device's analytic cost
model: the scheduler stays hardware-oblivious end to end.

All byte quantities are **nominal** (actual array bytes times the
context's ``data_scale``), matching what the simulated devices charge.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cl import GB
from ..monetdb.bat import BAT, Role
from ..ocelot.autotune import DeviceCharacteristics
from ..ocelot.engine import OcelotEngine

#: assumed selectivity when a selection's output size is unknown
EST_SELECTIVITY = 0.15


@dataclass(frozen=True)
class OpShape:
    """Coarse resource demand of one operator invocation."""

    stream_bytes: float = 0.0     # sequentially read + written
    gather_bytes: float = 0.0     # data-dependent accesses
    atomic_ops: float = 0.0
    atomic_addresses: float = 1.0
    launches: int = 1
    out_bytes: float = 0.0        # device-resident result footprint


def bat_rows(value) -> int:
    return int(value.count) if isinstance(value, BAT) else 0


def bat_nominal_bytes(bat: BAT, scale: float) -> float:
    """Nominal tail footprint (bitmaps store one bit per row)."""
    if bat.role is Role.BITMAP:
        return (bat.count / 8.0) * scale
    try:
        itemsize = bat.dtype.itemsize
    except Exception:
        itemsize = 4
    return bat.count * itemsize * scale


def _bats(args) -> list[BAT]:
    return [a for a in args if isinstance(a, BAT)]


def shape_of(function: str, args, scale: float,
             engine: OcelotEngine) -> OpShape:
    """Estimate the resource demand of ``ocelot.<function>`` on ``args``."""
    bats = _bats(args)
    in_bytes = sum(bat_nominal_bytes(b, scale) for b in bats)
    n = max((bat_rows(b) for b in bats), default=0)
    nominal_rows = n * scale

    if function in ("select", "thetaselect"):
        out = (n / 8.0) * scale
        extra = 2 if (len(args) > 1 and args[1] is not None) else 0
        return OpShape(stream_bytes=in_bytes + out, launches=1 + extra,
                       out_bytes=out)
    if function == "projection":
        oids, source = args[0], args[1]
        rows = bat_rows(oids)
        if isinstance(oids, BAT) and oids.role is Role.BITMAP:
            rows = int(rows * EST_SELECTIVITY)
        item = source.dtype.itemsize if isinstance(source, BAT) else 4
        out = rows * item * scale
        return OpShape(stream_bytes=rows * 4 * scale + out,
                       gather_bytes=rows * item * scale,
                       launches=2, out_bytes=out)
    if function in ("join", "semijoin", "antijoin"):
        return OpShape(stream_bytes=8 * in_bytes, gather_bytes=in_bytes,
                       atomic_ops=nominal_rows,
                       atomic_addresses=nominal_rows,
                       launches=18, out_bytes=in_bytes)
    if function == "thetajoin":
        l_rows, r_rows = bat_rows(args[0]), bat_rows(args[1])
        pairs = (l_rows * scale) * max(r_rows * scale, 1.0)
        return OpShape(stream_bytes=4.0 * pairs, launches=5,
                       out_bytes=8 * l_rows * scale)
    if function == "sort":
        passes = max(1, -(-32 // engine.radix_bits))
        return OpShape(stream_bytes=4.0 * passes * in_bytes,
                       gather_bytes=in_bytes,
                       launches=2 + 3 * passes, out_bytes=2 * in_bytes)
    if function in ("group", "subgroup"):
        sorted_input = bool(bats) and bats[0].sorted
        factor = 2 if function == "subgroup" else 1
        if sorted_input and function == "group":
            return OpShape(stream_bytes=3 * in_bytes, launches=4,
                           out_bytes=n * 4 * scale)
        return OpShape(stream_bytes=factor * 8 * in_bytes,
                       atomic_ops=factor * nominal_rows,
                       atomic_addresses=max(nominal_rows, 1.0),
                       launches=factor * 16, out_bytes=n * 4 * scale)
    if function in ("subsum", "submin", "submax", "subcount", "subavg"):
        gids = args[0] if function == "subcount" else args[1]
        ngroups = float(args[-1]) if args else 1.0
        rows = bat_rows(gids)
        passes = 2 if function == "subavg" else 1
        out = max(ngroups, 1.0) * 8 * scale
        return OpShape(
            stream_bytes=passes * in_bytes + out,
            atomic_ops=passes * rows * scale,
            atomic_addresses=max(ngroups, 1.0),
            launches=2 * passes,
            out_bytes=out,
        )
    if function in ("sum", "min", "max", "avg"):
        return OpShape(stream_bytes=in_bytes, launches=2, out_bytes=8)
    if function == "count":
        if bats and bats[0].role is Role.BITMAP:
            return OpShape(stream_bytes=in_bytes, launches=2)
        return OpShape(stream_bytes=0.0, launches=0)
    if function == "hashbuild":
        return OpShape(stream_bytes=6 * in_bytes,
                       atomic_ops=nominal_rows,
                       atomic_addresses=max(nominal_rows, 1.0),
                       launches=8)
    if function == "mirror":
        out = n * 4 * scale
        return OpShape(stream_bytes=out, launches=1, out_bytes=out)
    if function in ("oidunion", "oidintersect"):
        return OpShape(stream_bytes=3 * in_bytes, launches=3,
                       out_bytes=in_bytes)
    if function == "pipe":
        # a fused region (repro.fuse) is one launch streaming every
        # input once and writing only the live outputs — the placer
        # prices it as one transfer-in/one-out with the chain's summed
        # compute, so fusion changes placement decisions, not just
        # launch counts (intermediates cost nothing anywhere)
        spec = args[0]
        out = sum(
            (n / 8.0) * scale if output.is_select else n * 4 * scale
            for output in spec.outputs
        )
        return OpShape(stream_bytes=in_bytes + out, launches=1,
                       out_bytes=out)
    # element-wise calc / compare / ifthenelse and anything unmodelled:
    # stream everything once and write one output column
    out = n * 4 * scale
    return OpShape(stream_bytes=in_bytes + out, launches=1, out_bytes=out)


def shape_seconds(chars: DeviceCharacteristics, shape: OpShape) -> float:
    """Measured-profile prediction of one operator's device seconds."""
    t = shape.launches * chars.launch_overhead_s
    t += shape.stream_bytes / (chars.stream_gbs * GB)
    if shape.gather_bytes:
        t += shape.gather_bytes / (chars.gather_gbs * GB)
    if shape.atomic_ops:
        t += shape.atomic_ops * chars.atomic_ns(shape.atomic_addresses) * 1e-9
    return t
