"""Observed per-(column, op) selectivity statistics for the placer.

The fan-out planner needs the selection's output size to price the
partial-download and host-merge legs of a split.  The original placer
assumed a fixed 15 % (:data:`repro.sched.costs.EST_SELECTIVITY`), which
systematically *overprices* splits of selective predicates at large
inputs — exactly the fig. 8a region where fan-out should win — and
underprices unselective ones.

``SelectivityStats`` closes the loop: after every executed selection the
heterogeneous backend feeds back the observed fraction, keyed by
``(column key, operator)``, smoothed with an exponential moving average
(recency matters: value distributions drift).  The placer then asks
:meth:`estimate` instead of using the constant.  Statistics collection
is free in simulated time — a real engine reads result sizes off
completion events it already waits on.

The column key is the BAT tag with any partition-slice suffix stripped,
so observations from fanned-out runs (``lineitem.l_shipdate[0:512]``)
and whole-column runs pool together.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

#: EMA weight of the newest observation
SMOOTHING = 0.4

_SLICE_SUFFIX = re.compile(r"\[\d+:\d+\]$")


def column_key(tag: str) -> str:
    """Normalise a BAT tag to a statistics key (strip slice suffixes)."""
    return _SLICE_SUFFIX.sub("", tag or "")


@dataclass
class SelectivityStats:
    """EMA of observed selectivities per (column key, operator)."""

    smoothing: float = SMOOTHING
    _estimates: dict = field(default_factory=dict)
    observations: int = 0

    def observe(self, column: str, op: str, selectivity: float) -> None:
        """Fold one observed output/input fraction into the estimate."""
        selectivity = min(max(float(selectivity), 0.0), 1.0)
        key = (column_key(column), op)
        current = self._estimates.get(key)
        if current is None:
            self._estimates[key] = selectivity
        else:
            self._estimates[key] = (
                self.smoothing * selectivity
                + (1.0 - self.smoothing) * current
            )
        self.observations += 1

    def estimate(self, column: str, op: str, default: float) -> float:
        """The learned selectivity, or ``default`` before any feedback."""
        return self._estimates.get((column_key(column), op), default)

    def __len__(self) -> int:
        return len(self._estimates)

    def snapshot(self) -> dict:
        """Copy of the current estimates (introspection / examples)."""
        return dict(self._estimates)
