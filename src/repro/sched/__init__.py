"""``repro.sched`` — the heterogeneous multi-device scheduler ("HET").

The paper's §7 future work, second item: after making single-device
operators hardware-oblivious, "distribute operators across multiple
devices", with placement driven by automatically generated device
profiles.  This package owns *both* simulated devices at once and
schedules one MAL plan across them:

* :class:`~repro.sched.pool.DevicePool` — one
  :class:`~repro.ocelot.engine.OcelotEngine` per device plus its
  measured :class:`~repro.ocelot.autotune.DeviceCharacteristics`,
  cross-device BAT migration, and the per-queue makespan join,
* :class:`~repro.sched.placer.CostPlacer` — per-instruction cost-based
  placement from the measured characteristics *plus* the host<->device
  transfer cost of operands not already resident (data gravity), and a
  partitioned fan-out planner for row-independent operators,
* :mod:`~repro.sched.partition` — split execution across the devices'
  own queues with a host-side merge of the partials,
* :class:`~repro.sched.backend.HeterogeneousBackend` — the fifth engine
  configuration, ``CONFIGS["HET"]`` / ``db.connect("HET")``.
"""

from .backend import HeterogeneousBackend
from .placer import CostPlacer, Placement
from .pool import DevicePool

__all__ = [
    "CostPlacer",
    "DevicePool",
    "HeterogeneousBackend",
    "Placement",
]
