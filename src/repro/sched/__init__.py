"""``repro.sched`` — the heterogeneous multi-device scheduler ("HET").

The paper's §7 future work, second item: after making single-device
operators hardware-oblivious, "distribute operators across multiple
devices", with placement driven by automatically generated device
profiles.  This package owns *both* simulated devices at once and
schedules one MAL plan across them.  (Where it sits in the stack:
ARCHITECTURE.md §"repro.sched"; the serving layer that multiplexes
whole *queries* over it is :mod:`repro.serve`.)

Placement policy (:class:`~repro.sched.placer.CostPlacer`)
----------------------------------------------------------

For every dispatched instruction the placer scores each device with

``predicted run time (measured characteristics) + transfer cost of
non-resident operands + wake-up charge``

and picks the minimum:

* **measured profiles** — at pool construction every device is probed
  by :func:`repro.ocelot.autotune.autotune`; the resulting
  :class:`~repro.ocelot.autotune.DeviceCharacteristics` (streaming and
  gather rates, host-link bandwidth and latency, launch overhead,
  memory capacity) are the *only* device knowledge the scheduler uses —
  it never reads a device's cost model directly, which is what keeps
  the policy hardware-oblivious;
* **data gravity** — the transfer term prices moving each operand to
  the candidate device *now*: zero if the operand is homed there (live,
  offloaded or evicted-but-restorable), a host upload if it is a cold
  intermediate, a read-back *plus* upload if it lives on the other
  device, and zero for persistent base columns (their upload is paid
  once and amortised across queries, paper §5 protocol).  Chains of
  operators therefore stay on the device holding their intermediates,
  and cold host data flows to the zero-copy CPU unless the work is
  large enough to amortise the PCIe hop;
* **wake-up charges** — a device that has not yet run anything in this
  query still owes its fixed per-query framework cost (the Intel SDK's
  ~0.6 s, §5.3.2); adding it to the score keeps cheap instructions from
  dragging that intercept into a query that otherwise runs entirely on
  the GPU;
* **capacity** — placements whose working set exceeds a fraction of the
  device's memory are scored infeasible, so "GPU line ends at 2 GB"
  becomes "the scheduler stops considering the GPU".

Partitioned fan-out (:mod:`~repro.sched.partition`)
---------------------------------------------------

Row-independent operators (element-wise calc, selections, grouped
aggregation partials — :data:`repro.ocelot.rewriter
.PARTITIONABLE_FUNCTIONS`) are additionally offered to the fan-out
planner: the input oid-range is split across devices proportionally to
measured throughput (a water-filling balance that accounts for each
device's fixed launch/sync cost), capped by memory capacity, executed
on the devices' *own* queues concurrently, and merged on the host
(concatenation for values, offset-merge for oid lists, partial-fold for
grouped aggregates).  The split is chosen only when its predicted
makespan beats the best single device by a safety margin — the
single-device plan is always in the feasible set, so HET never
schedules a predictably worse plan — *or* when nothing fits any single
device, which is how HET keeps scaling past the GPU's 2 GB limit
(fig. 8).

Execution mechanics
-------------------

* :class:`~repro.sched.pool.DevicePool` — one
  :class:`~repro.ocelot.engine.OcelotEngine` per device over the shared
  catalog; cross-device BAT migration through the host with a clock
  join at the hand-over (the dynamic equivalent of a rewriter-inserted
  sync boundary); cached partition slices so fan-out enjoys hot device
  caches; per-queue makespan joins — global for one-query-at-a-time
  execution, *session-scoped* when the serve layer interleaves queries
  (each session carries its own floors, see
  :meth:`repro.cl.queue.CommandQueue.advance_session_to`);
* :class:`~repro.sched.backend.HeterogeneousBackend` — the fifth engine
  configuration (``CONFIGS["HET"]`` / ``db.connect("HET")``): routes
  every ``ocelot.*`` instruction through the placer (or replays the
  plan cache's recorded decisions for repeat queries), keeps per-query
  scheduling state per session, charges framework overheads per device
  on first use, runs ``ocelot.sync`` on the device homing the operand,
  and falls back to embedded sequential MonetDB for unsupported
  operators (mixed execution, §3.2).

``examples/heterogeneous.py`` walks the three regimes (small data rides
the GPU; data gravity keeps chains together; fan-out scales past device
memory) and ``examples/concurrency.py`` adds the serving layer on top.
"""

from .backend import HeterogeneousBackend
from .placer import CostPlacer, Placement
from .pool import DevicePool
from .stats import SelectivityStats

__all__ = [
    "CostPlacer",
    "DevicePool",
    "HeterogeneousBackend",
    "Placement",
    "SelectivityStats",
]
