"""Partitioned fan-out execution with a host-side merge.

Each participating device runs the *unmodified* Ocelot host code on a
cached sub-range view of the input (the devices' queues advance
independently, so the partitions genuinely overlap in simulated time);
the per-device partials are synced to the host on their own queues, the
pool joins the timelines (the barrier before the merge), and a cheap
host merge — concatenation for row-shaped results, an element-wise fold
for ngroups-wide aggregation partials — produces one MonetDB-owned BAT.

Mirrors the partition-parallel OLAP pattern of Hespe et al.: big
partition-local work, small merge.
"""

from __future__ import annotations

import numpy as np

from ..monetdb.bat import BAT, OID_DTYPE, Role
from ..monetdb.calc import grouped_dtype
from ..ocelot.operators import HOST_CODE, op_sync
from ..ocelot.rewriter import GROUPED_AGG_FUNCTIONS, SELECT_FUNCTIONS
from .pool import DevicePool


def execute_split(pool: DevicePool, function: str, args,
                  plan: list[tuple[int, int, int]],
                  charge_overhead=None):
    """Run ``ocelot.<function>`` split per ``plan`` and merge on host."""
    if function in SELECT_FUNCTIONS:
        return _split_select(pool, function, args, plan, charge_overhead)
    if function in GROUPED_AGG_FUNCTIONS:
        return _split_grouped(pool, function, args, plan, charge_overhead)
    if function == "pipe":
        return _split_pipe(pool, function, args, plan, charge_overhead)
    return _split_ewise(pool, function, args, plan, charge_overhead)


# ---------------------------------------------------------------------------
# shared plumbing
# ---------------------------------------------------------------------------

def _run_partials(pool, function, args, plan, charge_overhead):
    """One partial result per participating device (concurrent queues)."""
    if charge_overhead is not None:
        # wake every participating device *before* enqueueing the first
        # partial: a wake-up charge is a joined-timeline barrier, which
        # mid-loop would serialize partials already in flight
        for device, _lo, _hi in plan:
            charge_overhead(device)
    partials = []
    for device, lo, hi in plan:
        engine = pool.engines[device]
        sliced = [
            pool.slice_bat(a, lo, hi) if isinstance(a, BAT) else a
            for a in args
        ]
        with engine.memory.operator_scope():
            out = HOST_CODE[function](engine, *sliced)
        partials.append((engine, lo, hi, out))
    return partials


def _to_host(engine, bat: BAT) -> np.ndarray:
    """Sync one partial back on its own device's queue."""
    with engine.memory.operator_scope():
        op_sync(engine, bat)
    return bat.peek_values()


def _merge_barrier(pool: DevicePool, merged_bytes: int) -> None:
    """Join the queues and charge the host-side merge."""
    pool.charge_host(pool.merge_seconds(merged_bytes * pool.data_scale))


def _discard(pool: DevicePool, partials) -> None:
    for engine, _lo, _hi, out in partials:
        if isinstance(out, BAT):
            pool.release_device_bat(out)


# ---------------------------------------------------------------------------
# selection: offset + concatenate the qualifying-oid lists
# ---------------------------------------------------------------------------

def _split_select(pool, function, args, plan, charge_overhead):
    partials = _run_partials(pool, function, args, plan, charge_overhead)
    pieces = []
    for engine, lo, _hi, out in partials:
        local = _to_host(engine, out)
        if local.size:
            pieces.append(local.astype(OID_DTYPE) + OID_DTYPE.type(lo))
    oids = (
        np.concatenate(pieces) if pieces else np.empty(0, OID_DTYPE)
    )
    _merge_barrier(pool, int(oids.nbytes))
    _discard(pool, partials)
    # per-partition lists ascend and partitions are disjoint ranges, so
    # the concatenation is the globally ascending oid list MS produces
    return BAT(oids, Role.OIDS, key=True, tag="het_sel")


# ---------------------------------------------------------------------------
# element-wise operators: concatenate the row slices
# ---------------------------------------------------------------------------

def _split_ewise(pool, function, args, plan, charge_overhead):
    partials = _run_partials(pool, function, args, plan, charge_overhead)
    pieces = [
        _to_host(engine, out) for engine, _lo, _hi, out in partials
    ]
    values = np.concatenate(pieces)
    _merge_barrier(pool, int(values.nbytes))
    _discard(pool, partials)
    return BAT(np.ascontiguousarray(values), Role.VALUES, tag="het_ewise")


# ---------------------------------------------------------------------------
# fused regions: per-output concatenation of the row slices
# ---------------------------------------------------------------------------

def _split_pipe(pool, function, args, plan, charge_overhead):
    """Fan out one fused region (pure value outputs — the placer never
    splits a pipe with a selection output) and merge each live output
    by concatenation, exactly like a plain element-wise operator."""
    partials = _run_partials(pool, function, args, plan, charge_overhead)
    n_out = len(args[0].outputs)
    merged, merged_bytes = [], 0
    for index in range(n_out):
        pieces = []
        for engine, _lo, _hi, out in partials:
            part = out[index] if isinstance(out, tuple) else out
            pieces.append(_to_host(engine, part))
        values = np.ascontiguousarray(np.concatenate(pieces))
        merged_bytes += values.nbytes
        merged.append(BAT(values, Role.VALUES, tag="het_pipe"))
    _merge_barrier(pool, merged_bytes)
    for engine, _lo, _hi, out in partials:
        for part in (out if isinstance(out, tuple) else (out,)):
            if isinstance(part, BAT):
                pool.release_device_bat(part)
    return merged[0] if n_out == 1 else tuple(merged)


# ---------------------------------------------------------------------------
# grouped aggregation: fold the ngroups-wide partials
# ---------------------------------------------------------------------------

def _fold(op: str, tables: list[np.ndarray]) -> np.ndarray:
    stack = np.stack(tables)
    if op in ("sum", "count"):
        return stack.sum(axis=0, dtype=stack.dtype)
    if op == "min":
        return stack.min(axis=0)
    return stack.max(axis=0)


def _split_grouped(pool, function, args, plan, charge_overhead):
    if function == "subavg":
        # partial averages do not merge; fold partial sums and counts
        vals, gids, ngroups = args
        sums = _split_grouped(pool, "subsum", (vals, gids, ngroups),
                              plan, charge_overhead)
        counts = _split_grouped(pool, "subcount", (gids, ngroups),
                                plan, charge_overhead)
        avg = (sums.peek_values().astype(np.float64)
               / counts.peek_values())
        return BAT(avg.astype(grouped_dtype("avg", vals.dtype)),
                   Role.VALUES, tag="het_subavg")

    op = function[3:]   # subsum -> sum, ...
    partials = _run_partials(pool, function, args, plan, charge_overhead)
    tables = [
        _to_host(engine, out) for engine, _lo, _hi, out in partials
    ]
    # per-slice empty groups hold the fold identity (0 for sum/count,
    # the dtype extreme for min/max), so the element-wise fold is exact
    merged = _fold(op, tables)
    _merge_barrier(pool, int(merged.nbytes))
    _discard(pool, partials)
    return BAT(np.ascontiguousarray(merged), Role.VALUES,
               tag=f"het_{function}")
