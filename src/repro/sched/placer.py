"""Cost-based placement: which device — or which split — runs an op.

For every MAL instruction the placer scores each device with the
measured-characteristics estimate of the operator's run time *plus* the
transfer cost of operands not already resident there — data gravity is a
first-class scheduling input, so chains of operators naturally stay on
the device holding their intermediates, and cold host data flows to the
zero-copy CPU unless the work is large enough to amortise the PCIe hop.

Row-independent operators (selection, element-wise calc, grouped
aggregation partials — see
:data:`repro.ocelot.rewriter.PARTITIONABLE_FUNCTIONS`) are additionally
offered to the **fan-out planner**: the input oid-range is split across
devices proportionally to their measured throughput (a water-filling
balance that accounts for each device's fixed launch/sync cost), capped
by device-memory capacity, and the split is chosen only when its
predicted makespan beats the best single device by a safety margin (the
planner always has the single-device plan in its feasible set, so HET
never schedules a predictably worse plan).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..cl import GB
from ..monetdb.bat import BAT
from ..ocelot.rewriter import (
    GROUPED_AGG_FUNCTIONS,
    PARTITIONABLE_FUNCTIONS,
    SELECT_FUNCTIONS,
)
from .costs import (
    EST_SELECTIVITY,
    bat_nominal_bytes,
    shape_of,
    shape_seconds,
)
from .pool import DevicePool
from .stats import SelectivityStats

#: a split must beat the best single device by this factor to be chosen
#: (absorbs estimation error so HET stays <= min(CPU, GPU))
SPLIT_MARGIN = 0.9

#: keep the previous split boundaries while their predicted makespan is
#: within this factor of the fresh optimum — base-column slices stay hot
#: in the device caches only if the boundaries stay put, and that
#: amortisation (which plan_split deliberately does not price) is worth
#: more than a few percent of predicted balance
SPLIT_STICKINESS = 1.25

#: never plan more device-resident bytes than this fraction of capacity
MEMORY_FRACTION = 0.7

#: fan-out needs at least this many actual rows per participating device
MIN_SPLIT_ROWS = 64


@dataclass
class Placement:
    """The placer's decision for one instruction."""

    device: int                                   # best single device
    predicted_s: float
    #: fan-out plan: (device index, lo row, hi row) per participant;
    #: ``None`` means run whole on ``device``
    split: list[tuple[int, int, int]] | None = None


class CostPlacer:
    """Scores devices and plans fan-outs for one :class:`DevicePool`.

    ``stats`` carries observed per-(column, op) selectivities fed back
    by the backend after every selection; the fan-out planner prices a
    split's download/merge legs with the learned value instead of the
    fixed 15 % guess (which blocks profitable splits of selective
    predicates at large sizes, fig. 8a)."""

    def __init__(self, pool: DevicePool,
                 stats: SelectivityStats | None = None):
        self.pool = pool
        self.stats = stats if stats is not None else SelectivityStats()
        #: devices routed around by a tripped circuit breaker (the
        #: backend's ``note_node_failure``): scored infinite, excluded
        #: from fan-out plans, unbanned when the breaker cools down
        self.banned: set[int] = set()
        #: (function, column tag, n) -> last chosen fan-out boundaries
        self._split_memo: dict[tuple, list] = {}

    def _selectivity(self, function: str, args) -> float:
        bats = [a for a in args if isinstance(a, BAT)]
        if not bats:
            return EST_SELECTIVITY
        return self.stats.estimate(
            bats[0].tag, function, EST_SELECTIVITY
        )

    # -- single-device scoring ------------------------------------------------

    def operand_transfer_s(self, bat: BAT, device: int) -> float:
        """Cost of making one operand consumable on ``device`` now."""
        pool = self.pool
        chars = pool.characteristics[device]
        scale = pool.data_scale
        home = pool.home_of(bat)
        if home == device:
            return 0.0
        nbytes = bat_nominal_bytes(bat, scale)
        if home is not None and not bat.has_host_values:
            # homed on the other device (resident or offloaded there):
            # read back / restore there, then upload here
            src = pool.characteristics[home]
            return src.transfer_seconds(nbytes) + chars.transfer_seconds(
                nbytes
            )
        if pool.engines[device].memory.has_resident(bat):
            return 0.0
        if bat.is_base:
            # persistent columns stay hot in the device cache across
            # queries (paper §5 protocol); their one-time upload is paid
            # on the real timeline but not held against the placement
            return 0.0
        return chars.transfer_seconds(nbytes)

    def score_single(self, function: str, args, device: int) -> float:
        if device in self.banned:
            return float("inf")
        pool = self.pool
        engine = pool.engines[device]
        chars = pool.characteristics[device]
        scale = pool.data_scale
        shape = shape_of(function, args, scale, engine)
        if chars.global_mem_bytes:
            budget = MEMORY_FRACTION * chars.global_mem_bytes
            need = shape.out_bytes + sum(
                bat_nominal_bytes(a, scale)
                for a in args
                if isinstance(a, BAT)
            )
            if need > budget:
                return float("inf")
        t = shape_seconds(chars, shape)
        for a in args:
            if isinstance(a, BAT):
                t += self.operand_transfer_s(a, device)
        return t

    # -- fan-out planning --------------------------------------------------------

    def _splittable(self, function: str, args) -> bool:
        if function == "pipe":
            # fused regions stay element-wise per row, so pure-value
            # pipes fan out like any batcalc; a fused *selection*
            # output is device-shaped (bitmap) and is placed whole
            if any(o.is_select for o in args[0].outputs):
                return False
        elif function not in PARTITIONABLE_FUNCTIONS:
            return False
        if len(self.pool) - len(self.banned) < 2:
            return False
        if function in SELECT_FUNCTIONS and len(args) > 1 \
                and args[1] is not None:
            return False   # candidate-constrained selections stay whole
        bats = [a for a in args if isinstance(a, BAT)]
        if not bats:
            return False
        n = bats[0].count
        if n < 2 * MIN_SPLIT_ROWS:
            return False
        for b in bats:
            if not b.has_host_values or b.count != n:
                return False
        return True

    def plan_split(self, function: str, args,
                   charged: frozenset = frozenset()
                   ) -> tuple[list, float, float] | None:
        """Water-filling shares + predicted makespan, or ``None``.

        Returns ``(plan, with_wake_s, work_s)``: the makespan including
        the wake-up cost of still-idle devices, and the pure-work
        makespan used for the margin test (wake costs are step functions
        that would distort a multiplicative margin).
        """
        pool = self.pool
        scale = pool.data_scale
        bats = [a for a in args if isinstance(a, BAT)]
        n = bats[0].count
        bytes_per_row = sum(b.dtype.itemsize for b in bats) * scale

        # per-row downloaded partial bytes and merged host bytes by class
        if function in SELECT_FUNCTIONS:
            selectivity = self._selectivity(function, args)
            down_per_row = 4.0 * selectivity * scale
            merge_bytes = selectivity * n * 4.0 * scale
        elif function in GROUPED_AGG_FUNCTIONS:
            down_per_row = 0.0     # partials are ngroups-wide
            merge_bytes = 0.0      # folded below via the shape's out
        elif function == "pipe":
            # every live output of the fused region comes back per row
            down_per_row = 4.0 * len(args[0].outputs) * scale
            merge_bytes = n * down_per_row
        else:
            down_per_row = 4.0 * scale
            merge_bytes = n * 4.0 * scale

        rates, fixed, wake, caps = [], [], [], []
        for idx, engine in enumerate(pool.engines):
            chars = pool.characteristics[idx]
            shape = shape_of(function, args, scale, engine)
            var_s = shape_seconds(chars, shape) \
                - shape.launches * chars.launch_overhead_s
            per_row = max(var_s / n, 1e-15)
            # the partial result comes back over the host link
            if down_per_row and math.isfinite(chars.transfer_gbs):
                per_row += down_per_row / (chars.transfer_gbs * GB)
            rates.append(per_row)
            fix = (shape.launches + 4) * chars.launch_overhead_s \
                + 2 * chars.transfer_latency_s
            if function in GROUPED_AGG_FUNCTIONS:
                fix += chars.transfer_seconds(shape.out_bytes)
                merge_bytes = max(merge_bytes, shape.out_bytes)
            fixed.append(fix)
            # fanning out to a still-idle device wakes it: its fixed
            # per-query framework cost lands on this instruction
            wake.append(
                0.0 if idx in charged
                else engine.device.profile.framework_overhead_s
            )
            if idx in self.banned:
                caps.append(0)
            elif chars.global_mem_bytes:
                caps.append(int(
                    MEMORY_FRACTION * chars.global_mem_bytes / bytes_per_row
                ))
            else:
                caps.append(n)

        shares = _water_fill(n, rates, fixed, caps)
        if shares is None or sum(1 for x in shares if x > 0) < 2:
            return None

        # contiguous bounds in device order
        plan, lo = [], 0
        for idx, rows in enumerate(shares):
            if rows <= 0:
                continue
            hi = min(n, lo + rows)
            plan.append((idx, lo, hi))
            lo = hi
        if lo < n and plan:
            idx, plo, _ = plan[-1]
            plan[-1] = (idx, plo, n)

        work_span, wake_span = self._plan_spans(
            plan, bats, rates, fixed, wake, scale
        )

        # sticky boundaries: a re-balance (e.g. after a selectivity
        # observation shifted the rates) that predicts only marginally
        # better must not move the cut points — moving them invalidates
        # every device-cached base-column slice, a real re-upload the
        # prediction deliberately amortises away
        memo_key = (function, bats[0].tag, n)
        previous = self._split_memo.get(memo_key)
        if previous is not None and previous != plan \
                and all(phi - plo <= caps[idx]
                        for idx, plo, phi in previous):
            prev_work, prev_wake = self._plan_spans(
                previous, bats, rates, fixed, wake, scale
            )
            if prev_work <= work_span * SPLIT_STICKINESS:
                plan, work_span, wake_span = previous, prev_work, prev_wake
        self._split_memo[memo_key] = plan

        merge_s = pool.merge_seconds(merge_bytes)
        return plan, wake_span + merge_s, work_span + merge_s

    def _plan_spans(self, plan, bats, rates, fixed, wake, scale
                    ) -> tuple[float, float]:
        """Predicted makespan of one fan-out plan, charging uploads per
        operand for not-yet-cached slices (base-column slices stay hot
        across runs, like whole columns; intermediates pay every time)."""
        pool = self.pool
        work_span, wake_span = 0.0, 0.0
        for idx, plo, phi in plan:
            chars = pool.characteristics[idx]
            rows = phi - plo
            t = fixed[idx] + rates[idx] * rows
            for b in bats:
                if not b.is_base and not pool.slice_cached_on(
                        b, plo, phi, idx):
                    t += chars.transfer_seconds(
                        rows * b.dtype.itemsize * scale
                    )
            work_span = max(work_span, t)
            wake_span = max(wake_span, t + wake[idx])
        return work_span, wake_span

    # -- the decision -----------------------------------------------------------

    def choose(self, function: str, args,
               charged: frozenset = frozenset()) -> Placement:
        """Pick the cheapest plan; ``charged`` lists devices whose fixed
        per-query framework cost the running query has already paid —
        waking a still-idle device adds its overhead to the score, so
        zero-cost instructions never drag the Intel SDK's ~1 s intercept
        into a query that otherwise runs entirely on the GPU."""
        count = len(self.pool)
        work = [
            self.score_single(function, args, idx) for idx in range(count)
        ]
        totals = []
        for idx in range(count):
            extra = 0.0
            if idx not in charged:
                extra = self.pool.engines[idx].device.profile \
                    .framework_overhead_s
            totals.append(work[idx] + extra)
        best = min(range(count), key=totals.__getitem__)
        decision = Placement(device=best, predicted_s=totals[best])
        if self._splittable(function, args):
            planned = self.plan_split(function, args, charged)
            if planned is not None:
                plan, with_wake, work_only = planned
                if ((work_only < SPLIT_MARGIN * work[best]
                        and with_wake < totals[best])
                        or totals[best] == float("inf")):
                    # a predicted-cheaper split — or nothing fits whole
                    # anywhere, so fan out regardless of margin
                    decision.split = plan
                    decision.predicted_s = with_wake
        return decision


def _water_fill(n: int, rates, fixed, caps) -> list[int] | None:
    """Balance ``max_d(fixed_d + rate_d * x_d)`` subject to ``sum x = n``.

    Devices whose fixed cost exceeds the balanced finish time are dropped
    (their marginal benefit cannot pay for their overhead); capacity caps
    push overflow onto the remaining devices.
    """
    active = [i for i in range(len(rates)) if caps[i] > 0]
    while active:
        inv = sum(1.0 / rates[i] for i in active)
        t = (n + sum(fixed[i] / rates[i] for i in active)) / inv
        drop = [i for i in active if t <= fixed[i]]
        if not drop:
            break
        active = [i for i in active if i not in drop]
    if not active:
        return None
    shares = [0] * len(rates)
    for i in active:
        shares[i] = int((t - fixed[i]) / rates[i])
    # memory caps, overflow to the least-loaded remaining device
    overflow = 0
    for i in active:
        if shares[i] > caps[i]:
            overflow += shares[i] - caps[i]
            shares[i] = caps[i]
    assigned = sum(shares)
    remainder = n - assigned
    if remainder > 0:
        order = sorted(
            active, key=lambda i: fixed[i] + rates[i] * shares[i]
        )
        for i in order:
            room = caps[i] - shares[i]
            take = min(room, remainder)
            shares[i] += take
            remainder -= take
            if remainder <= 0:
                break
        if remainder > 0:
            return None   # does not fit anywhere
    elif remainder < 0:
        for i in active:
            cut = min(shares[i], -remainder)
            shares[i] -= cut
            remainder += cut
            if remainder >= 0:
                break
    return shares
