"""The fifth engine configuration: heterogeneous CPU+GPU execution.

``HeterogeneousBackend`` plugs into the MAL interpreter exactly like the
single-device Ocelot backend — same rewritten plans, same drop-in
operator registry — but owns a :class:`~repro.sched.pool.DevicePool`
with *all* simulated devices and routes every instruction through the
:class:`~repro.sched.placer.CostPlacer`:

* **single placement** runs the unmodified host code on the cheapest
  device (measured characteristics + data gravity), migrating
  cross-device operands with a makespan join first;
* **fan-out** splits row-independent operators across the devices'
  concurrent queues and merges the partials on the host;
* ``ocelot.sync`` always runs on the device holding the operand;
* unsupported operators fall back to embedded sequential MonetDB, their
  host time folded into the joined timeline (mixed execution, §3.2).

Per-query framework overheads (the Intel SDK's fixed cost) are charged
per device *on first use within the query*, so a query that never
touches the CPU never pays the CPU SDK's overhead.
"""

from __future__ import annotations

from ..monetdb.bat import BAT, Role
from ..monetdb.backends import MonetDBSequential
from ..monetdb.interpreter import Backend
from ..monetdb.storage import Catalog
from ..ocelot.operators import HOST_CODE
from .partition import execute_split
from .placer import CostPlacer
from .pool import DevicePool


class HeterogeneousBackend(Backend):
    """MAL backend scheduling one plan across every pooled device."""

    label = "HET"

    def __init__(
        self,
        catalog: Catalog,
        devices: tuple = ("cpu", "gpu"),
        data_scale: float = 1.0,
    ):
        self.pool = DevicePool(catalog, devices, data_scale)
        self.placer = CostPlacer(self.pool)
        self.fallback = MonetDBSequential(catalog)
        self._t0 = 0.0
        self._overhead_charged: set[int] = set()
        #: (function, "split"|device index) per dispatched instruction of
        #: the current query — introspection for tests and examples
        self.decision_log: list[tuple[str, object]] = []
        super().__init__(catalog)

    # -- registration ---------------------------------------------------------

    def _register_ops(self) -> None:
        for name in HOST_CODE:
            self.register(f"ocelot.{name}", self._bind(name))

    def _bind(self, function: str):
        def op(*args):
            return self._dispatch(function, args)

        return op

    def resolve(self, op: str):
        if op in self._registry:
            return self._registry[op]
        return self._foreign(op)

    def _foreign(self, op: str):
        """Mixed execution: delegate to MonetDB; its host time blocks
        both device queues (the host drives them)."""
        inner = self.fallback.resolve(op)

        def foreign(*args):
            before = self.fallback.elapsed()
            out = inner(*args)
            host_seconds = self.fallback.elapsed() - before
            if host_seconds:
                self.pool.charge_host(host_seconds)
            return out

        return foreign

    def supports(self, op: str) -> bool:
        return op in self._registry or self.fallback.supports(op)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, function: str, args):
        if function == "sync":
            return self._sync(args[0])
        if function in ("oidunion", "oidintersect"):
            bats = [a for a in args if isinstance(a, BAT)]
            if not any(b.role is Role.BITMAP for b in bats):
                # fanned-out selections merge into host oid *lists*;
                # Ocelot's bitmap algebra needs at least one bitmap, so
                # pure list combination is host work (mixed execution)
                for b in bats:
                    self._sync(b)
                return self._foreign(f"algebra.{function}")(*args)
        decision = self.placer.choose(
            function, args, charged=frozenset(self._overhead_charged)
        )
        if decision.split is not None:
            self.decision_log.append((function, "split"))
            return execute_split(
                self.pool, function, args, decision.split,
                charge_overhead=self._charge_overhead,
            )
        device = decision.device
        engine = self.pool.engines[device]
        self.decision_log.append((function, device))
        self._charge_overhead(device)
        for arg in args:
            if isinstance(arg, BAT):
                self.pool.ensure_on(arg, engine)
        with engine.memory.operator_scope():
            return HOST_CODE[function](engine, *args)

    def _sync(self, value):
        if not isinstance(value, BAT):
            return value
        # home_of also finds offloaded tails, which only their own
        # manager can restore (a host_copy is not shared across devices)
        home = self.pool.home_of(value)
        engine = self.pool.engines[home if home is not None else 0]
        with engine.memory.operator_scope():
            return HOST_CODE["sync"](engine, value)

    def _charge_overhead(self, device: int) -> None:
        if device in self._overhead_charged:
            return
        self._overhead_charged.add(device)
        overhead = self.pool.engines[device].device.profile \
            .framework_overhead_s
        if overhead:
            # charged on the *joined* timeline (host-side SDK setup is a
            # serial resource): every charge extends the query makespan
            # by exactly its amount, so query_overhead_s — the sum — is
            # exactly what operator-timing benchmarks must subtract
            self.pool.charge_host(overhead)

    # -- timing --------------------------------------------------------------------

    def begin(self) -> None:
        self.fallback.begin()
        self._overhead_charged.clear()
        self.decision_log = []
        self._t0 = self.pool.join_clocks()

    def elapsed(self) -> float:
        return self.pool.join_clocks() - self._t0

    def query_overhead_s(self) -> float:
        return sum(
            self.pool.engines[d].device.profile.framework_overhead_s
            for d in self._overhead_charged
        )

    # -- result collection ----------------------------------------------------------

    def collect(self, value):
        if isinstance(value, BAT) and not value.has_host_values:
            raise RuntimeError(
                f"result BAT {value.tag!r} reached the result set without "
                f"a sync — rewriter bug"
            )
        return super().collect(value)
