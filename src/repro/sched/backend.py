"""The fifth engine configuration: heterogeneous CPU+GPU execution.

``HeterogeneousBackend`` plugs into the MAL interpreter exactly like the
single-device Ocelot backend — same rewritten plans, same drop-in
operator registry — but owns a :class:`~repro.sched.pool.DevicePool`
with *all* simulated devices and routes every instruction through the
:class:`~repro.sched.placer.CostPlacer`:

* **single placement** runs the unmodified host code on the cheapest
  device (measured characteristics + data gravity), migrating
  cross-device operands with a makespan join first;
* **fan-out** splits row-independent operators across the devices'
  concurrent queues and merges the partials on the host;
* ``ocelot.sync`` always runs on the device holding the operand;
* unsupported operators fall back to embedded sequential MonetDB, their
  host time folded into the joined timeline (mixed execution, §3.2).

Per-query framework overheads (the Intel SDK's fixed cost) are charged
per device *on first use within the query*, so a query that never
touches the CPU never pays the CPU SDK's overhead.

Two serve-layer hooks (see ARCHITECTURE.md and :mod:`repro.serve`):

* **sessions** — every per-query bit of state (overhead charging, the
  decision log, the placement trace) lives in a :class:`_QueryState`;
  the session scheduler opens one state per in-flight query and
  activates it around each interpreted instruction, so N queries can
  interleave on the shared pool without corrupting each other's
  bookkeeping;
* **placement replay** — the plan cache records the placer's decision
  sequence for a plan (placement is deterministic given the measured
  device characteristics) and installs it on the next run, which skips
  re-scoring every instruction.  Replay is validated per instruction
  (function name and split bounds) and falls back to fresh scoring on
  any divergence.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..monetdb.bat import BAT, Role
from ..monetdb.backends import MonetDBSequential
from ..monetdb.interpreter import Backend
from ..monetdb.storage import Catalog
from ..ocelot.operators import HOST_CODE
from ..ocelot.rewriter import SELECT_FUNCTIONS
from .partition import execute_split
from .placer import CostPlacer, Placement
from .pool import DevicePool


@dataclass
class _QueryState:
    """Per-query scheduling state (one per in-flight session query)."""

    #: devices whose fixed per-query framework cost was already paid
    overhead_charged: set[int] = field(default_factory=set)
    #: (function, "split"|device index) per dispatched instruction —
    #: introspection for tests and examples
    decision_log: list[tuple[str, object]] = field(default_factory=list)
    #: full decisions in dispatch order, harvested by the plan cache
    trace: list[tuple[str, Placement]] = field(default_factory=list)
    #: cached decisions to replay instead of re-scoring; ``None`` = score
    replay: list[tuple[str, Placement]] | None = None
    replay_pos: int = 0

    def next_replayed(self, function: str, args) -> Placement | None:
        """The cached decision for this dispatch, or ``None`` (and replay
        is abandoned) when the recorded sequence diverges."""
        if self.replay is None or self.replay_pos >= len(self.replay):
            return None
        recorded_fn, decision = self.replay[self.replay_pos]
        if recorded_fn != function:
            self.replay = None   # plan diverged: score the rest fresh
            return None
        if decision.split is not None:
            bats = [a for a in args if isinstance(a, BAT)]
            if not bats or decision.split[-1][2] != bats[0].count:
                self.replay = None
                return None
        self.replay_pos += 1
        return decision


class HeterogeneousBackend(Backend):
    """MAL backend scheduling one plan across every pooled device."""

    label = "HET"
    #: declared protocol features (see ``Backend``): the plan cache may
    #: install recorded placement traces, and the serve layer may open
    #: per-session timelines for pipelined execution.
    replays_placements = True
    pipelines_sessions = True

    def __init__(
        self,
        catalog: Catalog,
        devices: tuple = ("cpu", "gpu"),
        data_scale: float = 1.0,
    ):
        self.pool = DevicePool(catalog, devices, data_scale)
        self.placer = CostPlacer(self.pool)
        #: observed per-(column, op) selectivities, fed back after every
        #: selection and consumed by the placer's fan-out pricing
        self.stats = self.placer.stats
        self.fallback = MonetDBSequential(catalog)
        self._t0 = 0.0
        self._default_state = _QueryState()
        self._session_states: dict[str, _QueryState] = {}
        self.current_session: str | None = None
        self._pending_replay: list[tuple[str, Placement]] | None = None
        #: device every dispatch is pinned to while a morsel is in
        #: flight (``morsel_scope``); None = normal cost placement
        self._pinned_device: int | None = None
        super().__init__(catalog)

    # -- per-query state ------------------------------------------------------

    @property
    def _state(self) -> _QueryState:
        if self.current_session is not None:
            return self._session_states[self.current_session]
        return self._default_state

    @property
    def _overhead_charged(self) -> set[int]:
        return self._state.overhead_charged

    @property
    def decision_log(self) -> list[tuple[str, object]]:
        return self._state.decision_log

    def install_replay(
        self, placements: list[tuple[str, Placement]] | None
    ) -> None:
        """Arm the *next* plain (non-session) query with a cached
        decision sequence; :meth:`begin` transfers it into the fresh
        per-query state."""
        self._pending_replay = placements or None

    def memory_managers(self):
        return tuple(engine.memory for engine in self.pool.engines)

    def take_trace(self) -> tuple[list[tuple[str, Placement]], int]:
        """Harvest the active state's decisions; returns ``(trace,
        replayed)`` where ``replayed`` counts decisions served from the
        installed replay rather than scored fresh."""
        state = self._state
        return list(state.trace), state.replay_pos

    # -- session lifecycle (serve layer) --------------------------------------

    def open_session(
        self, session: str,
        replay: list[tuple[str, Placement]] | None = None,
    ) -> float:
        """Register one in-flight query; returns its submit epoch."""
        state = _QueryState()
        state.replay = replay or None
        self._session_states[session] = state
        return self.pool.open_session(session)

    def activate_session(self, session: str | None) -> None:
        """Attribute subsequent dispatches (and their simulated commands)
        to ``session`` — ``None`` restores plain execution."""
        self.current_session = session
        self.pool.set_session(session)

    def close_session(self, session: str) -> float:
        """Drop a finished query's state; returns its completion epoch."""
        self._session_states.pop(session, None)
        if self.current_session == session:
            self.activate_session(None)
        return self.pool.close_session(session)

    # -- registration ---------------------------------------------------------

    def _register_ops(self) -> None:
        for name in HOST_CODE:
            self.register(f"ocelot.{name}", self._bind(name))
        # compressed-execution forms: their internal delegation hits the
        # ocelot.* bindings above, i.e. the cost-based placer — the
        # narrow code payloads are what gets placed, uploaded and cached
        from ..compress.ops import register_compress_ops

        register_compress_ops(self)

    def _bind(self, function: str):
        def op(*args):
            return self._dispatch(function, args)

        return op

    def resolve(self, op: str):
        if op in self._registry:
            return self._registry[op]
        return self._foreign(op)

    def _foreign(self, op: str):
        """Mixed execution: delegate to MonetDB; its host time blocks
        both device queues (the host drives them)."""
        inner = self.fallback.resolve(op)

        def foreign(*args):
            before = self.fallback.elapsed()
            out = inner(*args)
            host_seconds = self.fallback.elapsed() - before
            if host_seconds:
                self.pool.charge_host(host_seconds)
            return out

        return foreign

    def supports(self, op: str) -> bool:
        return op in self._registry or self.fallback.supports(op)

    # -- dispatch ----------------------------------------------------------------

    def _dispatch(self, function: str, args):
        if function == "sync":
            return self._sync(args[0])
        if function in ("oidunion", "oidintersect"):
            bats = [a for a in args if isinstance(a, BAT)]
            if not any(b.role is Role.BITMAP for b in bats):
                # fanned-out selections merge into host oid *lists*;
                # Ocelot's bitmap algebra needs at least one bitmap, so
                # pure list combination is host work (mixed execution)
                for b in bats:
                    self._sync(b)
                return self._foreign(f"algebra.{function}")(*args)
        state = self._state
        decision = state.next_replayed(function, args)
        if decision is not None and self.placer.banned and (
                decision.device in self.placer.banned
                or (decision.split is not None
                    and any(d in self.placer.banned
                            for d, _lo, _hi in decision.split))):
            # the trace predates a breaker trip: score fresh from here
            state.replay = None
            decision = None
        if decision is None:
            decision = self.placer.choose(
                function, args, charged=frozenset(state.overhead_charged)
            )
        if self._pinned_device is not None:
            # a morsel is in flight: the whole morsel runs on the device
            # chosen at scope entry (the morsel, not the operator, is
            # the stealing unit) — the replay slot above is still
            # consumed so recorded traces stay aligned
            decision = Placement(
                device=self._pinned_device,
                predicted_s=(decision.predicted_s
                             if decision.split is None else 0.0),
            )
        state.trace.append((function, decision))
        tracer = self.tracer
        if decision.split is not None:
            state.decision_log.append((function, "split"))
            if tracer is not None:
                span = tracer.begin(
                    f"dispatch.{function}", cat="dispatch", device="split",
                    shares=[[d, hi - lo] for d, lo, hi in decision.split],
                )
            try:
                out = execute_split(
                    self.pool, function, args, decision.split,
                    charge_overhead=self._charge_overhead,
                )
            finally:
                if tracer is not None:
                    tracer.end(span)
        else:
            device = decision.device
            engine = self.pool.engines[device]
            state.decision_log.append((function, device))
            self._charge_overhead(device)
            if tracer is not None:
                label = self._device_label(device)
                span = tracer.begin(
                    f"dispatch.{function}", cat="dispatch",
                    tid=label, device=label,
                )
            try:
                for arg in args:
                    if isinstance(arg, BAT):
                        if tracer is not None \
                                and not engine.memory.has_resident(arg):
                            from ..obs.tracer import describe_value

                            tracer.event(
                                "transfer", cat="transfer",
                                tid=self._device_label(device),
                                device=self._device_label(device),
                                tag=arg.tag,
                                **describe_value(arg),
                            )
                        self.pool.ensure_on(arg, engine)
                with engine.memory.operator_scope():
                    out = HOST_CODE[function](engine, *args)
            finally:
                if tracer is not None:
                    tracer.end(span)
        if function in SELECT_FUNCTIONS:
            self._observe_selection(function, args, out)
        return out

    def _device_label(self, device: int) -> str:
        engine = self.pool.engines[device]
        return "GPU" if engine.device.is_gpu else "CPU"

    # -- morsel-driven execution --------------------------------------------------

    def morsel_scope(self):
        """Pin one morsel's dispatches to the least-loaded device.

        Entered by the morsel executor around each oid-range batch: the
        device whose queue frontier is earliest takes the whole morsel,
        so a slow device simply claims fewer morsels — work stealing at
        morsel granularity, replacing per-operator fan-out splits inside
        pipelined regions (the region's intermediates then stay resident
        on the executing device)."""
        import contextlib

        @contextlib.contextmanager
        def scope():
            previous = self._pinned_device
            candidates = [
                idx for idx in range(len(self.pool.engines))
                if idx not in self.placer.banned
            ] or list(range(len(self.pool.engines)))
            self._pinned_device = min(
                candidates,
                key=lambda idx: self.pool.engines[idx].queue.makespan(),
            )
            try:
                yield self._pinned_device
            finally:
                self._pinned_device = previous

        return scope()

    def slice_base(self, bat: BAT, lo: int, hi: int) -> BAT:
        """Morsel slices share the pool's partition-slice cache, so a
        slice already resident on a device is recognised by placement
        and costs no re-upload."""
        return self.pool.slice_bat(bat, lo, hi)

    def _observe_selection(self, function: str, args, result) -> None:
        """Feed the observed selectivity back to the placer's stats.

        Free in simulated time: a real engine reads result sizes off
        completion events it already waits on, so peeking the bitmap's
        population count charges nothing.  Candidate-constrained
        selections are skipped — their output counts the *conjunction*
        with the candidate list, which would poison the per-column
        estimate (and they are never fanned out anyway)."""
        if len(args) > 1 and args[1] is not None:
            return
        bats = [a for a in args if isinstance(a, BAT)]
        if not bats or not bats[0].count:
            return
        hits = self._result_cardinality(result)
        if hits is None:
            return
        self.stats.observe(
            bats[0].tag, function, hits / bats[0].count
        )

    @staticmethod
    def _result_cardinality(result):
        if not isinstance(result, BAT):
            return None
        if result.role is Role.OIDS:
            return result.count
        if result.role is Role.BITMAP:
            ref = result.device_ref
            bits = (
                ref.array if ref is not None and not ref.released
                else result.peek_values()
            )
            if bits is None:
                return None
            from ..kernels import count_bits

            return count_bits(bits, result.count)
        return None

    def _sync(self, value):
        if not isinstance(value, BAT):
            return value
        # home_of also finds offloaded tails, which only their own
        # manager can restore (a host_copy is not shared across devices)
        home = self.pool.home_of(value)
        engine = self.pool.engines[home if home is not None else 0]
        with engine.memory.operator_scope():
            return HOST_CODE["sync"](engine, value)

    def _charge_overhead(self, device: int) -> None:
        if device in self._overhead_charged:
            return
        self._overhead_charged.add(device)
        overhead = self.pool.engines[device].device.profile \
            .framework_overhead_s
        if overhead:
            # charged on the *joined* timeline (host-side SDK setup is a
            # serial resource): every charge extends the query makespan
            # by exactly its amount, so query_overhead_s — the sum — is
            # exactly what operator-timing benchmarks must subtract
            self.pool.charge_host(overhead)

    # -- circuit breakers: route work around a sick device ---------------------

    def note_node_failure(self, error) -> str:
        """Charge the failed device's breaker; ban it from placement on
        trip.  A ban is a placer-level exclusion (infinite score, zero
        fan-out share), so retried queries route onto the healthy
        devices; the last healthy device is never banned.  Faults
        without a device id fall back to the backend-wide breaker."""
        device = getattr(error, "node", None)
        if device is None or not 0 <= device < len(self.pool.engines):
            return super().note_node_failure(error)
        breaker = self.breakers().breaker(("device", device))
        tripped = breaker.record_failure()
        if tripped or not breaker.allow():
            banned = self.placer.banned
            if device not in banned \
                    and len(self.pool.engines) - len(banned) <= 1:
                return "fail"
            banned.add(device)
            return "rerouted"
        return "retry"

    def _recover_nodes(self) -> None:
        """Between queries: unban devices whose breakers cooled down
        (the next failure re-trips with doubled backoff)."""
        board = getattr(self, "_breaker_board", None)
        if board is None:
            return
        for device in sorted(self.placer.banned):
            if board.breaker(("device", device)).allow():
                self.placer.banned.discard(device)

    # -- timing --------------------------------------------------------------------

    def begin(self) -> None:
        self.fallback.begin()
        self._default_state = _QueryState()
        self._default_state.replay = self._pending_replay
        self._pending_replay = None
        self._t0 = self.pool.join_clocks()

    def elapsed(self) -> float:
        return self.pool.join_clocks() - self._t0

    def elapsed_now(self) -> float:
        return self.pool.observe_clocks() - self._t0

    def query_overhead_s(self) -> float:
        return sum(
            self.pool.engines[d].device.profile.framework_overhead_s
            for d in self._overhead_charged
        )

    # -- lifecycle -------------------------------------------------------------------

    def shutdown(self) -> None:
        """Release the whole pool's device state (connection close)."""
        self._session_states.clear()
        self.pool.shutdown()

    # -- result collection ----------------------------------------------------------

    def collect(self, value):
        if isinstance(value, BAT) and not value.has_host_values:
            raise RuntimeError(
                f"result BAT {value.tag!r} reached the result set without "
                f"a sync — rewriter bug"
            )
        return super().collect(value)
