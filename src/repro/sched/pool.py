"""The device pool: per-device engines, residency, and clock joins.

One :class:`~repro.ocelot.engine.OcelotEngine` per device, each with its
own context, command queue and Memory Manager over the *shared* catalog.
At construction every device is probed (``autotune``), so the scheduler's
placement decisions are driven purely by measured characteristics — the
pool never reads a device's cost model directly (hardware-oblivious, §7).

The pool also owns the two mechanisms that make multi-device execution
sound in the simulated-timeline model:

* **migration** (:meth:`DevicePool.ensure_on`): an Ocelot-owned BAT
  resident on device A that is consumed on device B is read back on A's
  queue, both queues are joined (a cross-device sync boundary — B cannot
  start before A's producers finished), and the tail is re-uploaded on
  B's queue;
* **partition slices** (:meth:`DevicePool.slice_bat`): cached sub-range
  views of host-resident BATs, so partitioned fan-out enjoys the same
  hot device cache across repeated runs as whole-BAT execution.
"""

from __future__ import annotations

from ..cl import Buffer
from ..monetdb.bat import BAT, Role
from ..monetdb.storage import Catalog
from ..ocelot.autotune import DeviceCharacteristics, autotune
from ..ocelot.engine import OcelotEngine
from ..ocelot.memory import BufferKind


class DevicePool:
    """All devices the heterogeneous scheduler may place work on."""

    def __init__(
        self,
        catalog: Catalog,
        devices: tuple = ("cpu", "gpu"),
        data_scale: float = 1.0,
    ):
        self.catalog = catalog
        self.engines: list[OcelotEngine] = []
        self.characteristics: list[DeviceCharacteristics] = []
        for device in devices:
            engine = OcelotEngine(catalog, device, data_scale)
            report = autotune(engine)   # probe + install tuned parameters
            self.engines.append(engine)
            self.characteristics.append(report.characteristics)
        #: (bat_id, lo, hi) -> sub-range view BAT (partition cache)
        self._slices: dict[tuple[int, int, int], BAT] = {}
        #: session whose commands are currently being scheduled (serve
        #: layer); ``None`` = plain one-query-at-a-time execution
        self.current_session: str | None = None
        catalog.on_delete(self._drop_slices)

    def __len__(self) -> int:
        return len(self.engines)

    # -- residency ---------------------------------------------------------

    def engine_for_buffer(self, buffer: Buffer) -> OcelotEngine | None:
        for engine in self.engines:
            if buffer.context is engine.context:
                return engine
        return None

    def device_of(self, bat: BAT) -> int | None:
        """Index of the device holding ``bat``'s live tail, if any."""
        ref = bat.device_ref
        if ref is None or ref.released:
            return None
        for idx, engine in enumerate(self.engines):
            if ref.context is engine.context:
                return idx
        return None

    def home_of(self, bat: BAT) -> int | None:
        """The device whose manager can produce ``bat``'s tail — live
        buffer, or an offloaded/evicted registry entry it can restore.
        This is the data-gravity anchor even under memory pressure."""
        idx = self.device_of(bat)
        if idx is not None:
            return idx
        for idx, engine in enumerate(self.engines):
            if engine.memory.has_entry(bat):
                return idx
        return None

    # -- cross-device migration ---------------------------------------------

    def ensure_on(self, bat: BAT, target: OcelotEngine) -> None:
        """Make ``bat`` consumable on ``target``'s device.

        Host-resident BATs need nothing (the target's Memory Manager
        uploads/caches them on demand); a device-resident tail on another
        device is migrated through the host with a clock join in between
        — the dynamic equivalent of a rewriter-inserted sync boundary.
        """
        ref = bat.device_ref
        if ref is not None and not ref.released \
                and ref.context is target.context:
            return
        if bat.has_host_values:
            # synced earlier: the host master is current, a stale
            # cross-device reference only needs detaching; the source
            # keeps its cached copy for its own future use
            if ref is not None and ref.context is not target.context:
                bat.device_ref = None
            return
        if ref is not None and not ref.released \
                and self.engine_for_buffer(ref) is None:
            bat.device_ref = None   # foreign buffer (not pool-managed)
            return
        home = self.home_of(bat)
        if home is None or self.engines[home] is target:
            # nothing to move: the target's own manager restores any
            # offloaded entry on demand
            return
        source = self.engines[home]
        # restore at home first if the tail was offloaded there
        ref = source.memory.buffer_for_bat(bat)
        # device-only tail: read back on the owner's queue ...
        for aux in list(bat.aux.values()):
            # operator-attached auxiliaries (materialised oid views) live
            # on the source device; drop them with the old residence
            if isinstance(aux, Buffer) and not aux.released:
                (self.engine_for_buffer(aux) or source).memory.release(aux)
        bat.aux.clear()
        host, _event = source.queue.enqueue_read(
            ref, wait_for=ref.dependencies_for_read()
        )
        # ... join the timelines at the hand-over ...
        self.join_clocks()
        source.memory.release(ref)
        bat.device_ref = None
        # ... and re-upload on the target's queue.
        new_buffer = target.memory.allocate(
            host.shape, host.dtype, BufferKind.RESULT, tag=ref.tag
        )
        target.queue.enqueue_write(new_buffer, host)
        target.memory.link_result(bat, new_buffer)

    # -- partition slices ------------------------------------------------------

    def slice_bat(self, bat: BAT, lo: int, hi: int) -> BAT:
        """Cached view of rows ``[lo, hi)`` of a host-resident BAT."""
        if lo == 0 and hi == bat.count:
            return bat
        key = (bat.bat_id, lo, hi)
        sliced = self._slices.get(key)
        if sliced is None:
            slice_rows = getattr(bat, "slice_rows", None)
            if slice_rows is not None:
                # encoded columns slice in the code domain — no decode
                sliced = slice_rows(lo, hi)
                sliced.is_base = bat.is_base
                self._slices[key] = sliced
                return sliced
            values = bat.peek_values()
            if values is None:
                raise ValueError(
                    f"cannot slice device-only BAT {bat.tag!r}"
                )
            sliced = BAT(
                values[lo:hi],
                Role.VALUES,
                key=bat.key,
                sorted_=bat.sorted,
                tag=f"{bat.tag}[{lo}:{hi}]",
            )
            # a slice of a persistent column is as cache-persistent as
            # the column itself (placement treats its upload as amortised)
            sliced.is_base = bat.is_base
            self._slices[key] = sliced
        return sliced

    def slice_cached_on(self, bat: BAT, lo: int, hi: int,
                        device: int) -> bool:
        """Whether the ``[lo, hi)`` slice is already device-cached."""
        sliced = self._slices.get((bat.bat_id, lo, hi))
        if sliced is None:
            return False
        return self.engines[device].memory.has_resident(sliced)

    def _drop_slices(self, bat: BAT) -> None:
        stale = [k for k in self._slices if k[0] == bat.bat_id]
        for key in stale:
            sliced = self._slices.pop(key)
            # propagate to the per-device caches (and any other listener)
            self.catalog.notify_recycled(sliced)

    # -- simulated clocks -------------------------------------------------------

    def join_clocks(self) -> float:
        """Barrier across all device queues (cross-device sync point).

        With a ``current_session`` set (serve layer) the barrier is
        session-scoped: it joins only that session's frontiers and floors
        only that session's future commands, so independent queries on
        the other queue keep running — the per-session generalisation of
        the global join.
        """
        session = self.current_session
        if session is not None:
            t = max(
                engine.queue.session_time(session) for engine in self.engines
            )
            for engine in self.engines:
                engine.queue.advance_session_to(session, t)
            return t
        t = max(engine.queue.finish() for engine in self.engines)
        for engine in self.engines:
            engine.queue.advance_to(t)
        return t

    def charge_host(self, seconds: float) -> None:
        """Account host-side work (e.g. a partial merge) on the joined
        timeline: no device command may start before it completes.

        Always a barrier — even zero-cost host work (an empty merge)
        consumes every device's partials, so the queues must join.
        Session-scoped when ``current_session`` is set (only the owning
        session waits on its own host work)."""
        t = self.join_clocks() + max(seconds, 0.0)
        session = self.current_session
        for engine in self.engines:
            if session is not None:
                engine.queue.advance_session_to(session, t)
            else:
                engine.queue.advance_to(t)

    def makespan(self) -> float:
        return max(engine.queue.makespan() for engine in self.engines)

    def observe_clocks(self) -> float:
        """Read-only :meth:`join_clocks`: the same instant, but no
        timeline is floored — mid-query observers (the tracer) use
        this so sampling the clock never perturbs the schedule."""
        session = self.current_session
        if session is not None:
            return max(
                engine.queue.session_time(session) for engine in self.engines
            )
        return self.makespan()

    # -- session lifecycle (serve layer) ----------------------------------------

    def set_session(self, session: str | None) -> None:
        """Attribute subsequently scheduled commands to ``session``."""
        self.current_session = session
        for engine in self.engines:
            engine.queue.current_session = session

    def open_session(self, session: str) -> float:
        """Register a session on every queue; its commands may not start
        before "now".  Returns the simulated submit epoch.

        "Now" is the pool-wide frontier (the host has already issued
        everything scheduled so far), so every queue is floored at the
        same epoch — otherwise a session submitted after a CPU-heavy
        batch could schedule GPU commands into that queue's idle past
        and report an impossibly small latency."""
        epoch = max(engine.queue.makespan() for engine in self.engines)
        for engine in self.engines:
            engine.queue.open_session(session, epoch)
        return epoch

    def close_session(self, session: str) -> float:
        """Drop a session's tracking state; returns its completion epoch
        (the latest frontier it reached on any queue)."""
        t = self.session_time(session)
        for engine in self.engines:
            engine.queue.close_session(session)
        return t

    def session_time(self, session: str) -> float:
        return max(
            engine.queue.session_time(session) for engine in self.engines
        )

    # -- host-side merge model --------------------------------------------------

    def host_characteristics(self):
        """The profile of the device doing host-side work (the CPU)."""
        for idx, engine in enumerate(self.engines):
            if engine.device.is_cpu:
                return self.characteristics[idx]
        return self.characteristics[0]

    def merge_seconds(self, merged_nominal_bytes: float) -> float:
        """Host-side cost of merging partials: read + write the merged
        column at the host's streaming rate.  The single source of truth
        for both the planner's prediction and the charged time."""
        from ..cl import GB

        host = self.host_characteristics()
        return 2 * merged_nominal_bytes / (host.stream_gbs * GB)

    # -- lifecycle --------------------------------------------------------------

    def shutdown(self) -> None:
        """Release every device's cached buffers and the slice cache."""
        self._slices.clear()
        self.catalog.off_delete(self._drop_slices)
        for engine in self.engines:
            engine.memory.shutdown()

    # -- helpers --------------------------------------------------------------

    def release_device_bat(self, bat: BAT) -> None:
        """Free a consumed partial result's device storage everywhere."""
        for key, aux in list(bat.aux.items()):
            if isinstance(aux, Buffer) and not aux.released:
                owner = self.engine_for_buffer(aux)
                if owner is not None:
                    owner.memory.release(aux)
        bat.aux.clear()
        ref = bat.device_ref
        if ref is not None and not ref.released:
            owner = self.engine_for_buffer(ref)
            if owner is not None:
                owner.memory.release(ref)
        bat.device_ref = None

    @property
    def data_scale(self) -> float:
        return self.engines[0].context.data_scale
