"""Query observability: spans, metrics, profiles (PR 9).

One namespace answers "where did this query's time go?":

* :mod:`repro.obs.tracer` — a zero-dependency, query-scoped
  :class:`Tracer`.  The interpreter, morsel runner, heterogeneous
  scheduler and shard backend open :class:`Span`\\ s around every MAL
  instruction, fused ``ocelot.pipe`` launch, morsel batch, device
  dispatch/transfer, shard fan-out/shuffle and interconnect charge, so
  one query yields one coherent parent/child tree.
  ``Tracer.export_chrome()`` writes the standard Chrome trace-event
  JSON (``chrome://tracing`` / Perfetto), reproducing the paper's
  fig. 9 per-device timelines from a real run.
* :mod:`repro.obs.metrics` — :class:`MetricsRegistry`, a live facade
  folding the historically ad-hoc counters (plan cache, interconnect,
  compression, memory manager, breakers, scheduler) into one flat
  namespace with ``snapshot()``/``diff()`` plus a slow-query log.
* :mod:`repro.obs.profile` — renders a per-operator profile (time,
  launches, rows, bytes, placement, observed encodings) for
  ``EXPLAIN ANALYZE``.

Tracing is **off by default** and costs one pointer check per
interpreter step when off.  Enable it per connection with the
``trace=on`` spec param (e.g. ``"HET:trace=on"``) or globally with
``REPRO_TRACE=on`` — the same gate pattern as fusion, morsels and
compression.  ``Connection.execute(..., analyze=True)`` forces tracing
on for a single statement regardless of the gates.
"""

from .metrics import MetricsRegistry
from .profile import render_profile
from .tracer import Span, Tracer, describe_value, trace_env_forced

__all__ = [
    "MetricsRegistry",
    "Span",
    "Tracer",
    "describe_value",
    "render_profile",
    "trace_env_forced",
]
