"""``EXPLAIN ANALYZE`` rendering: a per-operator profile table.

Input is a :class:`~repro.obs.tracer.Tracer` carried on the executed
query's :class:`~repro.monetdb.interpreter.QueryResult` (``.trace``).
The table shows, per MAL operator: call count, simulated time and its
share of the wall time, device-side launches, output rows, nominal
megabytes, and the devices/encodings observed at runtime — the analyze
path reports what each shard/device *actually did*, not the driver
catalog's static view.
"""

from __future__ import annotations

_HEADER = (
    "operator", "calls", "time_ms", "%", "launches", "rows", "MB",
    "device",
)


def _fmt_row(cells) -> str:
    widths = (24, 6, 10, 6, 9, 10, 9, 16)
    out = []
    for cell, width in zip(cells, widths):
        text = str(cell)
        out.append(text.ljust(width) if cell is cells[0]
                   else text.rjust(width))
    return "  ".join(out).rstrip()


def render_profile(tracer, header: str = "EXPLAIN ANALYZE") -> str:
    """The per-operator profile table for one traced query."""
    profile = tracer.profile()
    wall_s = profile["wall_s"] or 0.0
    lines = [
        f"# {header} engine={profile['engine']} "
        f"wall={wall_s * 1e3:.3f} ms "
        f"spans={profile['spans']}",
        _fmt_row(_HEADER),
    ]
    operators = sorted(
        profile["operators"].items(),
        key=lambda item: item[1]["seconds"],
        reverse=True,
    )
    total_s = 0.0
    for name, row in operators:
        total_s += row["seconds"]
        share = 100.0 * row["seconds"] / wall_s if wall_s else 0.0
        device = ",".join(row["devices"]) or "-"
        if row["encodings"]:
            device += " [" + ",".join(row["encodings"]) + "]"
        lines.append(_fmt_row((
            name,
            row["calls"],
            f"{row['seconds'] * 1e3:.3f}",
            f"{share:.1f}",
            row["launches"],
            row["rows"],
            f"{row['bytes'] / 1e6:.2f}",
            device,
        )))
    share = 100.0 * total_s / wall_s if wall_s else 0.0
    lines.append(
        f"# operators {total_s * 1e3:.3f} ms of {wall_s * 1e3:.3f} ms "
        f"wall ({share:.1f}%)"
    )
    lines.extend(_notes(tracer))
    return "\n".join(lines)


def _notes(tracer) -> list[str]:
    """Footnotes: cache decisions, runtime encodings, interconnect."""
    notes = []
    for event in tracer.events:
        if event["name"] == "plan_cache.lookup":
            hit = event["args"].get("hit")
            notes.append(f"# plan cache: {'hit' if hit else 'miss'}")
    encodings = observed_encodings(tracer)
    if encodings:
        notes.append("# encodings (observed): " + ", ".join(
            f"{column}={codes}" for column, codes in encodings.items()
        ))
    charges = [e for e in tracer.events
               if e["cat"] == "interconnect"]
    if charges:
        nominal = sum(e["args"].get("bytes", 0) for e in charges)
        physical = sum(e["args"].get("bytes_physical", 0)
                       for e in charges)
        notes.append(
            f"# interconnect: {len(charges)} transfers, "
            f"{nominal / 1e6:.2f} MB nominal / "
            f"{physical / 1e6:.2f} MB physical"
        )
    return notes


def observed_encodings(tracer) -> dict[str, str]:
    """``table.column -> per-shard observed codecs`` from bind spans.

    This is the runtime truth: each shard catalog encodes its own
    partition, so the codec a shard actually read can differ from the
    driver catalog's whole-column choice that plain ``explain()``
    renders."""
    out: dict[str, str] = {}
    for span in tracer.walk():
        column = span.args.get("column")
        if not column:
            continue
        shard_encodings = span.args.get("shard_encodings")
        if shard_encodings:
            out[column] = ",".join(
                f"shard{i}:{kind or 'plain'}"
                for i, kind in enumerate(shard_encodings)
            )
        elif span.args.get("encoding") is not None:
            out[column] = str(span.args["encoding"])
    return out
