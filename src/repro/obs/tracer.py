"""A zero-dependency, query-scoped tracer.

The clock is the engine's **simulated** clock (``backend.elapsed``),
so span durations are the same quantity every figure plots; spans
therefore nest exactly (the clock is monotone within a query) and
per-operator times reconcile with the query's wall time.

Spans close LIFO through :meth:`Tracer.end`; a span abandoned by an
exception is closed implicitly when an enclosing span ends, so a query
killed mid-plan still exports a well-formed tree.
"""

from __future__ import annotations

import json
import os
from contextlib import contextmanager

import numpy as np

from ..monetdb.bat import BAT, Role

#: environment gate, same pattern as ``REPRO_FUSION`` / ``REPRO_MORSEL``
#: / ``REPRO_COMPRESSION`` — except tracing defaults *off*, so the env
#: word turns it on globally (``off`` forces it off even for
#: ``trace=on`` connections).
TRACE_ENV = "REPRO_TRACE"

_OFF_WORDS = ("off", "0", "false", "no")


def trace_env_forced() -> bool | None:
    """``None`` when ``REPRO_TRACE`` is unset, else the forced state."""
    value = os.environ.get(TRACE_ENV)
    if value is None or not value.strip():
        return None
    return value.strip().lower() not in _OFF_WORDS


# ---------------------------------------------------------------------------
# value description (rows / bytes / encoding), shared by every span site
# ---------------------------------------------------------------------------

def _bat_nominal_nbytes(bat: BAT) -> int:
    nominal = getattr(bat, "nominal_nbytes", None)
    if nominal is not None:
        return int(nominal)
    if bat.role is Role.BITMAP:
        return (int(bat.count) + 7) // 8
    try:
        itemsize = bat.dtype.itemsize
    except Exception:
        return 0
    return int(bat.count) * int(itemsize)


def describe_value(value) -> dict:
    """Rows / nominal + physical bytes / encoding of an operator result.

    Duck-typed so it covers plain and encoded BATs, sharded values
    (anything with a ``parts`` sequence of per-shard values), tuples of
    outputs, and scalars — without importing the shard layer.
    """
    if isinstance(value, BAT):
        nominal = _bat_nominal_nbytes(value)
        physical = getattr(value, "physical_nbytes", None)
        encoding = getattr(value, "encoding", None)
        return {
            "rows": int(value.count),
            "bytes": nominal,
            "bytes_physical": int(physical) if physical is not None
            else nominal,
            "encoding": getattr(encoding, "kind", None),
        }
    parts = getattr(value, "parts", None)
    if parts is not None and isinstance(parts, (list, tuple)):
        described = [describe_value(part) for part in parts]
        encodings = sorted({d["encoding"] for d in described
                            if d.get("encoding")})
        return {
            "rows": sum(d.get("rows", 0) for d in described),
            "bytes": sum(d.get("bytes", 0) for d in described),
            "bytes_physical": sum(d.get("bytes_physical", 0)
                                  for d in described),
            "encoding": ",".join(encodings) or None,
            "shards": len(described),
        }
    if isinstance(value, tuple):
        described = [describe_value(part) for part in value]
        return {
            "rows": max((d.get("rows", 0) for d in described), default=0),
            "bytes": sum(d.get("bytes", 0) for d in described),
            "bytes_physical": sum(d.get("bytes_physical", 0)
                                  for d in described),
            "encoding": None,
        }
    if isinstance(value, (int, float, np.integer, np.floating)):
        return {"rows": 1, "bytes": 8, "bytes_physical": 8,
                "encoding": None}
    return {"rows": 0, "bytes": 0, "bytes_physical": 0, "encoding": None}


# ---------------------------------------------------------------------------
# spans
# ---------------------------------------------------------------------------

class Span:
    """One timed interval; children nest strictly inside the parent."""

    __slots__ = ("name", "cat", "tid", "t0", "t1", "args", "parent",
                 "children")

    def __init__(self, name: str, cat: str = "op", tid: str = "driver",
                 t0: float = 0.0, args: dict | None = None,
                 parent: "Span | None" = None):
        self.name = name
        self.cat = cat
        self.tid = tid
        self.t0 = t0
        self.t1 = t0
        self.args = args or {}
        self.parent = parent
        self.children: list[Span] = []

    @property
    def duration(self) -> float:
        return max(self.t1 - self.t0, 0.0)

    def walk(self):
        yield self
        for child in self.children:
            yield from child.walk()

    def structure(self):
        """(name, (child structures…)) — timing-free shape for tests."""
        return (self.name, tuple(c.structure() for c in self.children))

    def find(self, name: str) -> "list[Span]":
        return [span for span in self.walk() if span.name == name]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Span {self.name!r} cat={self.cat} tid={self.tid} "
                f"{self.duration * 1e3:.3f}ms children={len(self.children)}>")


class Tracer:
    """Query-scoped span collector.

    ``clock`` is a zero-arg callable returning simulated seconds; the
    interpreter installs the backend's per-query clock before opening
    the root span.  Instant happenings (interconnect charges, device
    transfers, cache decisions) are recorded as :meth:`event`\\ s.
    """

    def __init__(self, clock=None, engine: str = ""):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self.engine = engine
        self.roots: list[Span] = []
        self.events: list[dict] = []
        self.wall_s: float | None = None
        self._stack: list[Span] = []

    # -- recording -------------------------------------------------------

    def begin(self, name: str, cat: str = "op", tid: str = "driver",
              **args) -> Span:
        parent = self._stack[-1] if self._stack else None
        span = Span(name, cat=cat, tid=tid, t0=self.clock(),
                    args=args, parent=parent)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span, **args) -> None:
        """Close ``span`` (and any deeper spans an exception abandoned)."""
        if span not in self._stack:
            return
        now = self.clock()
        while self._stack:
            top = self._stack.pop()
            top.t1 = now
            if top is span:
                break
        if args:
            span.args.update(args)

    @contextmanager
    def span(self, name: str, cat: str = "op", tid: str = "driver",
             **args):
        span = self.begin(name, cat=cat, tid=tid, **args)
        try:
            yield span
        finally:
            self.end(span)

    def event(self, name: str, cat: str = "event", tid: str = "driver",
              **args) -> None:
        self.events.append({"name": name, "cat": cat, "tid": tid,
                            "ts": self.clock(), "args": args})

    def annotate(self, **args) -> None:
        """Attach args to the innermost open span (no-op outside one)."""
        if self._stack:
            self._stack[-1].args.update(args)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def close_open(self) -> None:
        """Close anything an aborted query left open."""
        while self._stack:
            self.end(self._stack[-1])

    # -- reading ---------------------------------------------------------

    def root(self) -> Span | None:
        return self.roots[0] if self.roots else None

    def walk(self):
        for root in self.roots:
            yield from root.walk()

    def instruction_spans(self) -> list[Span]:
        return [s for s in self.walk() if s.cat == "instruction"]

    # -- export ----------------------------------------------------------

    def export_chrome(self, path: str | None = None) -> dict:
        """Chrome trace-event JSON (the ``chrome://tracing`` / Perfetto
        format): ``X`` complete events per span on one lane (``tid``)
        per device/shard, ``i`` instants for events, ``M`` metadata
        naming the lanes.  Timestamps are simulated microseconds."""
        self.close_open()
        tids: dict[str, int] = {}

        def tid_of(name: str) -> int:
            return tids.setdefault(name, len(tids))

        trace_events = []
        for span in self.walk():
            trace_events.append({
                "name": span.name,
                "cat": span.cat,
                "ph": "X",
                "ts": round(span.t0 * 1e6, 3),
                "dur": round(span.duration * 1e6, 3),
                "pid": 0,
                "tid": tid_of(span.tid),
                "args": _jsonable(span.args),
            })
        for event in self.events:
            trace_events.append({
                "name": event["name"],
                "cat": event["cat"],
                "ph": "i",
                "s": "t",
                "ts": round(event["ts"] * 1e6, 3),
                "pid": 0,
                "tid": tid_of(event["tid"]),
                "args": _jsonable(event["args"]),
            })
        metadata = [
            {"name": "process_name", "ph": "M", "pid": 0, "tid": 0,
             "args": {"name": f"repro {self.engine}".strip()}},
        ] + [
            {"name": "thread_name", "ph": "M", "pid": 0, "tid": tid,
             "args": {"name": lane}}
            for lane, tid in sorted(tids.items(), key=lambda kv: kv[1])
        ]
        document = {
            "traceEvents": metadata + trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "engine": self.engine,
                "wall_s": self.wall_s,
            },
        }
        if path is not None:
            with open(path, "w") as handle:
                json.dump(document, handle, indent=1, sort_keys=True)
                handle.write("\n")
        return document

    def profile(self) -> dict:
        """Structured per-operator profile (what ``EXPLAIN ANALYZE``
        renders and the bench harness embeds into ``BENCH_*.json``)."""
        self.close_open()
        operators: dict[str, dict] = {}
        for span in self.instruction_spans():
            row = operators.setdefault(span.name, {
                "calls": 0, "seconds": 0.0, "rows": 0,
                "bytes": 0, "bytes_physical": 0, "launches": 0,
                "devices": set(), "encodings": set(),
            })
            row["calls"] += 1
            row["seconds"] += span.duration
            row["rows"] += int(span.args.get("rows", 0))
            row["bytes"] += int(span.args.get("bytes", 0))
            row["bytes_physical"] += int(span.args.get("bytes_physical", 0))
            launches = sum(
                1 for child in span.walk()
                if child is not span and child.cat in (
                    "dispatch", "morsel", "shard")
            )
            row["launches"] += max(launches, 1)
            for child in span.walk():
                device = child.args.get("device")
                if device:
                    row["devices"].add(str(device))
                encoding = child.args.get("encoding")
                if encoding:
                    row["encodings"].add(str(encoding))
        for row in operators.values():
            row["devices"] = sorted(row["devices"])
            row["encodings"] = sorted(row["encodings"])
        return {
            "engine": self.engine,
            "wall_s": self.wall_s,
            "operators": operators,
            "events": len(self.events),
            "spans": sum(1 for _ in self.walk()),
        }


def _jsonable(value):
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        return [_jsonable(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if hasattr(value, "item"):          # numpy scalar
        return value.item()
    return str(value)
