"""One metrics namespace over the stack's historically ad-hoc counters.

:class:`MetricsRegistry` is a *live facade*: it does not duplicate any
counter, it reads the same stat objects the legacy accessors expose
(``Connection.plan_cache.stats``, ``Connection.interconnect``,
``Connection.compression``, the memory managers behind the backend,
the breaker board, the session scheduler) and flattens them into one
``snapshot()`` dict keyed ``plan_cache.hits``,
``interconnect.bytes_shuffled_physical``, ``compress.decode_events``,
``mm.intermediates_allocated``, ``breaker.<node>.state``,
``scheduler.parked``, … — so dashboards and tests diff one dict
instead of chasing five objects.

The registry also keeps the connection's **slow-query log**: every
completed query is counted (``obs.queries``) and queries slower than
the engine spec's ``obs_slow_ms=`` threshold are appended to
:attr:`slow_queries` with their name, engine and elapsed milliseconds.
"""

from __future__ import annotations

#: memory-manager counter fields surfaced under the ``mm.`` prefix,
#: summed across every device the backend owns
_MM_FIELDS = (
    "evictions", "offloads", "restores",
    "cache_hits", "cache_misses",
    "hash_cache_hits", "hash_cache_misses",
    "intermediates_allocated", "intermediates_freed",
    "intermediate_bytes", "intermediate_bytes_peak",
    "intermediate_bytes_physical", "intermediate_bytes_physical_peak",
)

_CACHE_FIELDS = ("hits", "misses", "invalidations", "placement_reuses")

_TRAFFIC_FIELDS = (
    "bytes_broadcast", "bytes_shuffled", "bytes_gathered",
    "bytes_broadcast_physical", "bytes_shuffled_physical",
    "bytes_gathered_physical",
)

_COMPRESS_FIELDS = (
    "columns_encoded", "columns_plain", "bytes_physical",
    "bytes_nominal", "decode_events", "partial_decodes",
)

_CLUSTER_FIELDS = (
    "nodes", "replicas", "promotions", "recoveries",
    "degraded_reads", "retries", "ranges_migrated",
    "topology_changes", "reads_balanced",
)


class MetricsRegistry:
    """Unified, live counter namespace for one connection."""

    def __init__(self, connection):
        self._connection = connection
        #: completed queries observed through :meth:`record_query`
        self.queries = 0
        #: queries over the ``obs_slow_ms=`` threshold, in completion
        #: order: dicts with ``name`` / ``engine`` / ``elapsed_ms``
        self.slow_queries: list[dict] = []

    # -- the slow-query log ----------------------------------------------

    @property
    def slow_threshold_ms(self) -> float:
        return float(getattr(self._connection.config, "obs_slow_ms", 0.0))

    def record_query(self, name: str, elapsed_s: float) -> None:
        """Count one completed query; log it when over the threshold."""
        self.queries += 1
        threshold = self.slow_threshold_ms
        if threshold > 0 and elapsed_s * 1e3 >= threshold:
            self.slow_queries.append({
                "name": name,
                "engine": self._connection.config.spec,
                "elapsed_ms": elapsed_s * 1e3,
            })

    # -- snapshots -------------------------------------------------------

    def snapshot(self) -> dict:
        """A flat dict of every counter the stack currently exposes.

        Values are plain ints/floats (breaker states are strings).
        Sections for subsystems the engine does not have (interconnect
        on single-node engines, memory managers on MS/MP) are absent
        rather than zero."""
        connection = self._connection
        backend = connection.backend
        out: dict[str, object] = {}

        stats = connection.plan_cache.stats
        for fields in _CACHE_FIELDS:
            out[f"plan_cache.{fields}"] = getattr(stats, fields)

        traffic = backend.interconnect_traffic()
        if traffic is not None:
            for fields in _TRAFFIC_FIELDS:
                out[f"interconnect.{fields}"] = getattr(
                    traffic.total, fields
                )
                out[f"interconnect.query.{fields}"] = getattr(
                    traffic.query, fields
                )
            out["interconnect.bytes_total"] = traffic.total.bytes_total
            out["interconnect.bytes_total_physical"] = (
                traffic.total.bytes_total_physical
            )

        compression = backend.compression_stats()
        if compression is not None:
            for fields in _COMPRESS_FIELDS:
                out[f"compress.{fields}"] = getattr(compression, fields)

        cluster = backend.cluster_stats()
        if cluster is not None:
            for fields in _CLUSTER_FIELDS:
                out[f"cluster.{fields}"] = getattr(cluster, fields)

        managers = list(backend.memory_managers())
        if managers:
            for fields in _MM_FIELDS:
                out[f"mm.{fields}"] = sum(
                    getattr(m.stats, fields) for m in managers
                )
            out["mm.resident_bytes"] = sum(
                m.resident_bytes for m in managers
            )
            out["mm.resident_bytes_physical"] = sum(
                m.resident_bytes_physical for m in managers
            )

        for breaker in backend.breakers():
            prefix = f"breaker.{breaker.name}"
            out[f"{prefix}.state"] = breaker.state
            out[f"{prefix}.trips"] = breaker.trips
            out[f"{prefix}.failures"] = breaker.failures

        scheduler = connection._scheduler
        if scheduler is not None:
            out["scheduler.parked"] = sum(
                1 for _, op in scheduler.turn_log if op == "parked"
            )
            out["scheduler.turns"] = len(scheduler.turn_log)
            out["scheduler.in_flight"] = len(scheduler)
            out["scheduler.pending"] = len(scheduler._pending)

        out["obs.queries"] = self.queries
        out["obs.slow_queries"] = len(self.slow_queries)
        return out

    def diff(self, before: dict, after: dict | None = None) -> dict:
        """What changed since ``before`` (an earlier :meth:`snapshot`).

        Numeric keys map to their delta (zero deltas are dropped);
        non-numeric keys (breaker states) map to their new value when
        it changed.  Keys absent from ``before`` diff against 0/None."""
        if after is None:
            after = self.snapshot()
        changed: dict[str, object] = {}
        for key, value in after.items():
            if isinstance(value, bool) or not isinstance(
                value, (int, float)
            ):
                if before.get(key) != value:
                    changed[key] = value
                continue
            delta = value - before.get(key, 0)
            if delta:
                changed[key] = delta
        return changed
