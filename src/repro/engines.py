"""The engine registry: pluggable, parameterizable, composable engines.

The paper's claim is hardware-obliviousness — the *same* operator plans
run on whatever execution resources exist, selected at runtime.  This
module is the API that makes the engine surface itself oblivious: rather
than a frozen dict of five labels, engines are **families** registered in
an :class:`EngineRegistry`, and a connection string is an **engine
spec** parsed by a small grammar::

    spec    :=  FAMILY [ ":" arg ("," arg)* ]
    arg     :=  COUNT "x" CHILD          (replication argument, e.g. 4xHET)
             |  WORD                     (family-defined flag, e.g. hash)
             |  NAME "=" VALUE           (family-defined parameter)

Examples::

    "CPU"             the Ocelot single-device engine
    "HET"             the heterogeneous CPU+GPU scheduler
    "SHARD:4xHET"     four simulated nodes, each running HET
    "shard:8xcpu"     case-insensitive; canonicalises to "SHARD:8xCPU"
    "SHARD:2xMS,key=lineitem.l_orderkey"   declared shard key (repeatable)

Flags are fixed words from the family's ``allowed_flags`` (e.g. the
universal ``fusion=off`` switch); parameters are ``NAME=VALUE`` pairs
whose NAME comes from the family's ``allowed_params`` and whose VALUE
is free-form (validated by the family's ``configure``) — the sharded
engine uses them for per-table shard-key declarations.

Parsing yields an :class:`EngineSpec` — ``(family, params)`` plus the
**canonical** spec string, which is what the plan cache, the serve layer
and the per-database connection cache key on.  Families resolve a spec
to an :class:`EngineConfig` (factory + optimizer pipeline + declared
properties); configs are memoised per canonical spec.

Out-of-tree engines plug in with :func:`register_engine` — the sharded
multi-node engine (:mod:`repro.shard`) registers itself exactly this
way, composing over child engines resolved through the same registry.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, replace
from typing import Callable, Optional

from .monetdb.interpreter import Backend
from .monetdb.mal import MALProgram
from .monetdb.storage import Catalog


class EngineSpecError(ValueError):
    """A connection string failed to parse or names no registered engine."""


#: the spec flag every family accepts to disable operator fusion for
#: one engine instance (A/B comparison), e.g. ``"CPU:fusion=off"``
FUSION_OFF = "fusion=off"

#: the spec parameter every family accepts to control morsel-driven
#: execution: ``morsel=off`` restores the whole-column path for one
#: engine instance, ``morsel=<rows>`` tunes the morsel size, e.g.
#: ``"CPU:morsel=off"`` or ``"HET:morsel=4096"``.  The ``REPRO_MORSEL``
#: environment variable additionally gates/tunes it globally.
MORSEL_PARAM = "morsel"

_MORSEL_OFF_WORDS = ("off", "0", "false", "no")

#: the spec parameter every family accepts to set a default query
#: deadline (simulated seconds) for queries submitted through the
#: session scheduler, e.g. ``"MS:timeout=2.5"``; ``timeout=off`` (the
#: default) means no deadline.  ``Connection.submit(timeout=...)``
#: overrides it per query.
TIMEOUT_PARAM = "timeout"

#: the spec parameter every family accepts to cap how many queries the
#: session scheduler admits concurrently, e.g. ``"MS:admission=4"``;
#: ``admission=off`` (the default) means unlimited.  Queries beyond the
#: cap queue at the front door and admit as slots free up.
ADMISSION_PARAM = "admission"

#: the spec parameter every family accepts to control compressed
#: execution: ``compression=off`` disables the compress rewrite pass
#: for one engine instance (whole-column decode on first touch),
#: ``compression=auto`` (the default) executes on whatever codec each
#: column carries, and ``compression=dict|rle|for`` restricts execution
#: to one codec family (other encodings fall back to decode), e.g.
#: ``"CPU:compression=off"``.  The ``REPRO_COMPRESSION`` environment
#: variable additionally overrides it globally — and, being a storage
#: setting too, controls which codecs ``Catalog.create_table`` applies.
COMPRESSION_PARAM = "compression"


#: the spec parameter every family accepts to enable query-scoped
#: tracing for one engine instance, e.g. ``"HET:trace=on"`` — spans
#: around every instruction, morsel, dispatch and shard transfer,
#: exportable as a Chrome trace (:mod:`repro.obs`).  Off by default
#: (one pointer check per interpreter step).  The ``REPRO_TRACE``
#: environment variable overrides it globally in either direction.
TRACE_PARAM = "trace"

#: the spec parameter every family accepts to set the slow-query-log
#: threshold in milliseconds, e.g. ``"MS:obs_slow_ms=5"``: completed
#: queries at or over the threshold are appended to
#: ``Connection.metrics.slow_queries``.  ``obs_slow_ms=off`` (the
#: default, 0) disables the log.
OBS_SLOW_PARAM = "obs_slow_ms"


def parse_morsel_setting(spec: EngineSpec) -> tuple[bool, int]:
    """``(enabled, size)`` from a spec's ``morsel=`` parameters.

    ``size == 0`` means "the default" (:data:`repro.morsel.passes
    .DEFAULT_MORSEL_SIZE`, unless ``REPRO_MORSEL`` overrides it).
    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(MORSEL_PARAM)
    if not values:
        return True, 0
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting morsel= values "
            f"{values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return False, 0
    if value == "on":
        return True, 0
    if value.isdigit() and int(value) > 0:
        return True, int(value)
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: morsel= takes 'off', 'on' or a "
        f"positive row count, got {value!r}"
    )


def parse_timeout_setting(spec: EngineSpec) -> float:
    """Default deadline in simulated seconds from ``timeout=``; 0.0 = off.

    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(TIMEOUT_PARAM)
    if not values:
        return 0.0
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting timeout= values "
            f"{values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return 0.0
    try:
        seconds = float(value)
    except ValueError:
        seconds = -1.0
    if seconds > 0.0:
        return seconds
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: timeout= takes 'off' or a "
        f"positive number of seconds, got {value!r}"
    )


def parse_admission_setting(spec: EngineSpec) -> int:
    """Concurrent-admission cap from ``admission=``; 0 = unlimited.

    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(ADMISSION_PARAM)
    if not values:
        return 0
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting admission= "
            f"values {values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return 0
    if value.isdigit() and int(value) > 0:
        return int(value)
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: admission= takes 'off' or a "
        f"positive query count, got {value!r}"
    )


def parse_compression_setting(spec: EngineSpec) -> str:
    """Compression mode from ``compression=``; one of
    :data:`repro.compress.MODES` (``off``/``auto``/``dict``/``rle``/
    ``for``), defaulting to ``auto``.

    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(COMPRESSION_PARAM)
    if not values:
        return "auto"
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting compression= "
            f"values {values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return "off"
    if value == "on":
        return "auto"
    from .compress import MODES

    if value in MODES:
        return value
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: compression= takes one of "
        f"{', '.join(MODES)}, got {value!r}"
    )


def parse_trace_setting(spec: EngineSpec) -> bool:
    """Whether ``trace=`` asks for query-scoped tracing (default off).

    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(TRACE_PARAM)
    if not values:
        return False
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting trace= values "
            f"{values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return False
    if value in ("on", "1", "true", "yes"):
        return True
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: trace= takes 'on' or 'off', "
        f"got {value!r}"
    )


def parse_slow_ms_setting(spec: EngineSpec) -> float:
    """Slow-query-log threshold (ms) from ``obs_slow_ms=``; 0.0 = off.

    Raises :class:`EngineSpecError` for malformed or conflicting values.
    """
    values = spec.param_values(OBS_SLOW_PARAM)
    if not values:
        return 0.0
    if len(values) > 1:
        raise EngineSpecError(
            f"engine spec {spec.canonical!r}: conflicting obs_slow_ms= "
            f"values {values!r}"
        )
    value = values[0]
    if value in _MORSEL_OFF_WORDS:
        return 0.0
    try:
        millis = float(value)
    except ValueError:
        millis = -1.0
    if millis >= 0.0:
        return millis
    raise EngineSpecError(
        f"engine spec {spec.canonical!r}: obs_slow_ms= takes 'off' or a "
        f"non-negative number of milliseconds, got {value!r}"
    )


@dataclass(frozen=True)
class EngineSpec:
    """One parsed engine spec: family + parameters + canonical string."""

    family: str                       # canonical family name, upper-case
    count: Optional[int] = None       # the COUNT of a "COUNTxCHILD" arg
    child: Optional[str] = None       # canonical child spec of that arg
    flags: tuple[str, ...] = ()       # family-defined words, lower-case
    #: family-defined (name, value) parameters, lower-case, sorted;
    #: a name may repeat (e.g. several ``key=...`` declarations)
    params: tuple[tuple[str, str], ...] = ()
    canonical: str = ""               # e.g. "SHARD:4xHET"

    def param_values(self, name: str) -> tuple[str, ...]:
        """Every value given for parameter ``name``, in canonical order."""
        return tuple(v for n, v in self.params if n == name)

    def __str__(self) -> str:
        return self.canonical


_REPLICATION_ARG = re.compile(r"^(\d+)x(.+)$", re.IGNORECASE)


@dataclass(frozen=True)
class EngineConfig:
    """One resolved engine: backend factory + planning pipeline.

    ``label`` is the family display name (figure columns, result
    attribution); ``spec`` is the canonical spec string the plan cache
    and connection cache key on.  For parameterless families the two
    coincide.
    """

    label: str
    make: Callable[[Catalog, float], Backend]
    is_ocelot: bool
    #: one-line description (README engine table, examples, tooling)
    description: str = ""
    #: whether the serve layer can overlap submitted queries on this
    #: engine's timelines (mirrors ``Backend.pipelines_sessions``)
    pipelines_sessions: bool = False
    #: whether the operator-fusion pass runs for this engine instance
    #: (the ``fusion=off`` spec flag clears it; the ``REPRO_FUSION``
    #: environment variable additionally gates it globally)
    fusion: bool = True
    #: whether the morsel pass runs for this engine instance (the
    #: ``morsel=off`` spec parameter clears it; the ``REPRO_MORSEL``
    #: environment variable additionally gates it globally)
    morsel: bool = True
    #: morsel size from the ``morsel=<rows>`` spec parameter; 0 means
    #: the default (``REPRO_MORSEL=<rows>`` overrides either)
    morsel_size: int = 0
    #: default deadline (simulated seconds) for queries submitted via
    #: the session scheduler, from ``timeout=<s>``; 0.0 means none
    timeout_s: float = 0.0
    #: concurrent-admission cap for the session scheduler, from
    #: ``admission=<n>``; 0 means unlimited
    admission: int = 0
    #: compressed-execution mode from ``compression=``; ``off`` skips
    #: the compress rewrite pass, ``auto`` (the default) executes on any
    #: codec, a codec name restricts execution to that codec family
    #: (the ``REPRO_COMPRESSION`` environment variable overrides it)
    compression: str = "auto"
    #: whether query-scoped tracing is on for this engine instance,
    #: from ``trace=on`` (the ``REPRO_TRACE`` environment variable
    #: overrides it globally in either direction; see :mod:`repro.obs`)
    trace: bool = False
    #: slow-query-log threshold in milliseconds from ``obs_slow_ms=``;
    #: 0.0 disables the log
    obs_slow_ms: float = 0.0
    #: canonical engine spec; defaults to ``label`` for parameterless
    #: families (set via ``__post_init__`` to keep the dataclass frozen)
    spec: str = ""

    def __post_init__(self):
        if not self.spec:
            object.__setattr__(self, "spec", self.label)

    @property
    def fuses(self) -> bool:
        """Whether :meth:`plan` will run the operator-fusion pass."""
        from .fuse import fusion_enabled

        return self.fusion and fusion_enabled()

    @property
    def morsels(self) -> bool:
        """Whether :meth:`plan` will run the morsel pass."""
        from .morsel import morsel_enabled

        return self.morsel and morsel_enabled()

    def effective_morsel_size(self) -> int:
        """Rows per morsel: ``REPRO_MORSEL=<rows>`` > spec > default."""
        from .morsel import DEFAULT_MORSEL_SIZE, env_morsel_size

        return (env_morsel_size()
                or self.morsel_size
                or DEFAULT_MORSEL_SIZE)

    def effective_compression(self) -> str:
        """Compression mode: ``REPRO_COMPRESSION`` > spec > ``auto``."""
        from .compress import effective_compression

        return effective_compression(self)

    @property
    def traces(self) -> bool:
        """Whether queries on this engine run traced by default:
        ``REPRO_TRACE`` > the ``trace=`` spec parameter > off.
        (``execute(..., analyze=True)`` forces tracing per statement
        regardless.)"""
        from .obs import trace_env_forced

        forced = trace_env_forced()
        return self.trace if forced is None else forced

    def plan(self, program: MALProgram) -> MALProgram:
        """Optimizer pipeline for this configuration.

        Runs the operator-fusion pass (unless disabled for this engine
        or globally), then — for Ocelot engines — the Ocelot rewriter,
        which reroutes ``fuse.pipe`` to ``ocelot.pipe`` alongside the
        ordinary module swaps, and finally the morsel pass, which
        collapses pipelined regions (in whichever operator vocabulary
        the earlier passes left behind) into ``morsel.run``
        instructions.  Deterministic per (program, engine, fusion
        switch, morsel switch) — the serve layer's plan cache memoises
        its output keyed by SQL text, canonical engine spec, schema
        version and the effective switches (see
        :mod:`repro.serve.plancache`).

        The compress pass runs *first*: it rewrites selections,
        groupings and aggregates over base columns into their
        ``compress.*`` forms, which the later passes treat as opaque
        leaf operators (fusion never fuses them, the Ocelot rewriter
        passes them through, the morsel pass streams the selects).
        """
        mode = self.effective_compression()
        if mode != "off":
            from .compress import compress_program

            program = compress_program(program, mode)
        if self.fuses:
            from .fuse import fuse_program

            program = fuse_program(program)
        if self.is_ocelot:
            from .ocelot.rewriter import rewrite_for_ocelot

            program = rewrite_for_ocelot(program)
        if self.morsels:
            from .morsel import morselize_program

            program = morselize_program(
                program, size=self.effective_morsel_size()
            )
        return program


@dataclass(frozen=True)
class EngineFamily:
    """One registered family: how to turn parsed params into a config."""

    name: str
    configure: Callable[[EngineSpec, "EngineRegistry"], EngineConfig]
    description: str = ""
    #: spec syntax shown in listings/errors, e.g. "SHARD:<N>x<CHILD>[,hash]"
    syntax: str = ""
    #: whether the family accepts a COUNTxCHILD replication argument
    takes_child: bool = False
    #: flag words the family accepts (lower-case)
    allowed_flags: frozenset = frozenset()
    #: parameter NAMEs the family accepts as ``NAME=VALUE`` args; the
    #: VALUE side is free-form (the family's ``configure`` validates it)
    allowed_params: frozenset = frozenset()


class EngineRegistry:
    """Engine families by name, with per-canonical-spec config memoisation."""

    def __init__(self):
        self._families: dict[str, EngineFamily] = {}
        self._configs: dict[str, EngineConfig] = {}

    # -- registration -------------------------------------------------------

    def register(self, family: EngineFamily, override: bool = False) -> None:
        name = family.name.upper()
        if name in self._families and not override:
            raise ValueError(
                f"engine family {name!r} is already registered "
                f"(pass override=True to replace it)"
            )
        self._families[name] = family
        # a family replacement invalidates every memoised config:
        # composite configs (SHARD:2xMS) embed child configs in their
        # factory closures, so scoping the purge to the replaced family
        # would leave stale children behind — and re-resolving is cheap
        self._configs.clear()

    def families(self) -> list[EngineFamily]:
        """Registered families, in registration order."""
        return list(self._families.values())

    def specs(self) -> list[str]:
        """Spec syntax of every family, for listings and error messages."""
        return [f.syntax or f.name for f in self._families.values()]

    # -- the spec grammar --------------------------------------------------------

    def parse(self, text: str) -> EngineSpec:
        """Parse and canonicalise one engine spec string.

        Arguments after the family separate on ``,`` or ``:``
        interchangeably (``SHARD:4xCPU:replicas=2`` names the same
        engine as ``SHARD:4xCPU,replicas=2``); the canonical form
        always uses ``,``.  Child specs of a ``<N>x<CHILD>`` argument
        are non-composite, so the extra separator is unambiguous."""
        if not isinstance(text, str) or not text.strip():
            raise EngineSpecError(
                f"engine spec must be a non-empty string, got {text!r}; "
                f"registered engines: {', '.join(self.specs())}"
            )
        head, sep, rest = text.strip().partition(":")
        name = head.strip().upper()
        family = self._families.get(name)
        if family is None:
            raise EngineSpecError(
                f"unknown engine family {head.strip()!r}; "
                f"registered engines: {', '.join(self.specs())}"
            )
        count: Optional[int] = None
        child: Optional[str] = None
        flags: list[str] = []
        params: list[tuple[str, str]] = []
        if sep:
            if not rest.strip():
                raise EngineSpecError(
                    f"engine spec {text!r}: empty parameter list after ':'"
                )
            for arg in re.split(r"[,:]", rest):
                arg = arg.strip()
                if not arg:
                    raise EngineSpecError(
                        f"engine spec {text!r}: empty parameter"
                    )
                m = _REPLICATION_ARG.match(arg)
                if m:
                    if not family.takes_child:
                        raise EngineSpecError(
                            f"engine family {name} takes no parameters "
                            f"(got {arg!r}); registered engines: "
                            f"{', '.join(self.specs())}"
                        )
                    if count is not None:
                        raise EngineSpecError(
                            f"engine spec {text!r}: duplicate "
                            f"<N>x<CHILD> argument"
                        )
                    count = int(m.group(1))
                    if count < 1:
                        raise EngineSpecError(
                            f"engine spec {text!r}: count must be >= 1"
                        )
                    child_text = m.group(2).strip()
                    if ":" in child_text:
                        raise EngineSpecError(
                            f"engine spec {text!r}: child engine "
                            f"{child_text!r} must be a non-composite spec"
                        )
                    # canonicalise (and existence-check) the child through
                    # the same registry — composition, not special-casing
                    child = self.parse(child_text).canonical
                    continue
                word = arg.lower()
                if word in family.allowed_flags:
                    if word in flags:
                        raise EngineSpecError(
                            f"engine spec {text!r}: duplicate parameter "
                            f"{arg!r}"
                        )
                    flags.append(word)
                    continue
                # NAME=VALUE parameter (flags are matched exactly above,
                # so a flag containing '=' — fusion=off — stays a flag)
                pname, eq, pvalue = word.partition("=")
                if eq and pname in family.allowed_params:
                    if not pvalue:
                        raise EngineSpecError(
                            f"engine spec {text!r}: parameter {pname!r} "
                            f"needs a value (got {arg!r})"
                        )
                    if (pname, pvalue) in params:
                        raise EngineSpecError(
                            f"engine spec {text!r}: duplicate parameter "
                            f"{arg!r}"
                        )
                    params.append((pname, pvalue))
                    continue
                allowed = sorted(family.allowed_flags) + [
                    f"{p}=<value>" for p in sorted(family.allowed_params)
                ]
                raise EngineSpecError(
                    f"engine spec {text!r}: unknown parameter {arg!r} "
                    f"for family {name}"
                    + (f" (allowed: {', '.join(allowed)})" if allowed
                       else "")
                )
        if family.takes_child and sep and count is None:
            raise EngineSpecError(
                f"engine spec {text!r}: family {name} requires an "
                f"<N>x<CHILD> argument, e.g. {family.syntax}"
            )
        # flags and parameters sort together in the canonical form so
        # "F:a,b" and "F:b,a" name one engine (one connection, one set
        # of plan-cache entries)
        flags.sort()
        params.sort()
        words = sorted(flags + [f"{n}={v}" for n, v in params])
        args = ([f"{count}x{child}"] if count is not None else []) + words
        canonical = name + (":" + ",".join(args) if args else "")
        return EngineSpec(
            family=name, count=count, child=child, flags=tuple(flags),
            params=tuple(params), canonical=canonical,
        )

    # -- resolution --------------------------------------------------------------

    def resolve(self, spec: "str | EngineSpec") -> EngineConfig:
        """The (memoised) config for one spec, parsing if necessary."""
        if isinstance(spec, str):
            spec = self.parse(spec)
        config = self._configs.get(spec.canonical)
        if config is None:
            family = self._families[spec.family]
            config = family.configure(spec, self)
            if config.spec != spec.canonical:
                config = replace(config, spec=spec.canonical)
            self._configs[spec.canonical] = config
        return config


#: the process-wide default registry; the five paper configurations are
#: registered by :mod:`repro.bench.configs`, the sharded engine by
#: :mod:`repro.shard`.
default_registry = EngineRegistry()


def register_engine(family: EngineFamily, override: bool = False) -> None:
    """Register an engine family with the default registry."""
    default_registry.register(family, override=override)


def engines() -> list[EngineFamily]:
    """The registered engine families (name, description, spec syntax)."""
    return default_registry.families()


def engine_table_markdown() -> str:
    """The README's engine table, generated from registry descriptions."""
    rows = [
        "| Engine | What it is | Options |",
        "|--------|------------|---------|",
    ]
    for family in engines():
        syntax = family.syntax or family.name
        options = sorted(family.allowed_flags) + [
            f"{name}=…" for name in sorted(family.allowed_params)
        ]
        cell = ", ".join(f"`{o}`" for o in options) or "—"
        rows.append(f"| `{syntax}` | {family.description} | {cell} |")
    return "\n".join(rows)


def _print_engine_table() -> None:  # pragma: no cover - CLI convenience
    # running as ``python -m repro.engines`` executes a *copy* of this
    # module with its own (empty) registry; go through the canonical
    # package attribute so the table reflects the real registrations
    import repro

    print(repro.engine_table_markdown())


if __name__ == "__main__":  # pragma: no cover
    _print_engine_table()
