"""Error hierarchy for the simulated OpenCL runtime.

The names deliberately mirror OpenCL error codes (``CL_OUT_OF_RESOURCES``,
``CL_BUILD_PROGRAM_FAILURE``, ...) so that host code reads like host code
written against a real OpenCL binding.
"""

from __future__ import annotations


class CLError(Exception):
    """Base class for all simulated OpenCL runtime errors."""


class OutOfDeviceMemory(CLError):
    """Raised when a buffer allocation exceeds the device's global memory.

    Mirrors ``CL_MEM_OBJECT_ALLOCATION_FAILURE``.  Ocelot's Memory Manager
    catches this error and reacts by evicting cached BATs (LRU) and, once
    the cache is empty, offloading result buffers to the host (paper §3.3).
    """

    def __init__(self, requested: int, available: int, capacity: int):
        self.requested = int(requested)
        self.available = int(available)
        self.capacity = int(capacity)
        super().__init__(
            f"device allocation of {requested} bytes failed: "
            f"{available} of {capacity} bytes available"
        )


class BuildError(CLError):
    """Raised when a kernel program cannot be specialised for a device.

    Mirrors ``CL_BUILD_PROGRAM_FAILURE``.
    """


class InvalidKernelArgs(CLError):
    """Raised when kernel arguments do not match the kernel signature."""


class InvalidEventWait(CLError):
    """Raised when a wait-list contains foreign or unfinished-state events."""


class BarrierDivergence(CLError):
    """Raised by the work-item interpreter on divergent barriers.

    In OpenCL, if any work-item in a work-group reaches a barrier, *all*
    work-items of that group must reach the same barrier.  The reference
    interpreter detects violations and raises instead of dead-locking.
    """


class DeviceLost(CLError):
    """Raised when operating on a released context or queue."""
