"""``repro.cl`` — a simulated OpenCL runtime (substrate S1).

Implements the kernel programming model the paper builds on: platforms,
devices, contexts, ``cl_mem`` buffers, in-order-per-engine command queues
with the full event model, runtime kernel compilation with pre-processor
specialisation, and two execution drivers (work-item reference interpreter
and vectorised numpy).  Results are always computed for real; execution
*times* are simulated by calibrated per-device cost models so that the
paper's comparisons can be reproduced without 2013 hardware.  Command
queues also carry per-session timelines for the serve layer's
overlapping queries.  (Layer map: ARCHITECTURE.md §"repro.cl".)
"""

from .buffer import Buffer
from .compiler import ACCESS_COALESCED, ACCESS_SEQUENTIAL, build, default_defines
from .context import Context
from .device import (
    Device,
    DeviceProfile,
    DeviceType,
    GB,
    INTEL_XEON_E5620,
    MB,
    NVIDIA_GTX460,
)
from .errors import (
    BarrierDivergence,
    BuildError,
    CLError,
    DeviceLost,
    InvalidEventWait,
    InvalidKernelArgs,
    OutOfDeviceMemory,
)
from .event import CommandType, Event, EventStatus
from .kernel import ExecContext, Kernel, KernelDef, Local, Param, ParamKind, Program, params
from .platform import Platform, get_device, get_platforms
from .profile import KernelWork
from .queue import CommandQueue, QueueStats
from .workitem import WorkItem, run_reference

__all__ = [
    "ACCESS_COALESCED",
    "ACCESS_SEQUENTIAL",
    "BarrierDivergence",
    "Buffer",
    "BuildError",
    "CLError",
    "CommandQueue",
    "CommandType",
    "Context",
    "Device",
    "DeviceLost",
    "DeviceProfile",
    "DeviceType",
    "Event",
    "EventStatus",
    "ExecContext",
    "GB",
    "INTEL_XEON_E5620",
    "InvalidEventWait",
    "InvalidKernelArgs",
    "Kernel",
    "KernelDef",
    "KernelWork",
    "Local",
    "MB",
    "NVIDIA_GTX460",
    "OutOfDeviceMemory",
    "Param",
    "ParamKind",
    "Platform",
    "Program",
    "QueueStats",
    "WorkItem",
    "build",
    "default_defines",
    "get_device",
    "get_platforms",
    "params",
    "run_reference",
]
