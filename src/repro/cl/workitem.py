"""Reference work-item interpreter for the kernel programming model.

This is the slow-but-faithful execution driver: it runs a kernel exactly as
the model specifies — one logical thread per work-item, work-items grouped
into work-groups sharing ``__local`` memory, and group-wide barriers.

Reference kernels are *generator functions*::

    def histogram_ref(wi, hist, keys, n):
        lid = wi.local_id()
        for i in wi.chunk(n):          # this thread's slice of the input
            ...
        yield                          # barrier(CLK_LOCAL_MEM_FENCE)
        ...

``yield`` is the barrier.  The interpreter advances every work-item of a
group to its next barrier before any item proceeds — and raises
:class:`~repro.cl.errors.BarrierDivergence` when items disagree on barrier
counts, which on real hardware would deadlock or corrupt memory.

The vectorised driver (:mod:`repro.cl.queue` via each kernel's ``vec_fn``)
must produce identical results; the test-suite cross-validates the two on
small inputs, which is how this repo demonstrates that one
hardware-oblivious kernel text serves every device.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from .buffer import Buffer
from .device import Device
from .errors import BarrierDivergence, InvalidKernelArgs
from .kernel import KernelDef, Local, ParamKind


class WorkItem:
    """The view of the NDRange a single kernel invocation sees.

    Mirrors the OpenCL work-item functions: ``get_global_id`` etc.  Also
    provides :meth:`chunk` / :meth:`strided`, the two §4.2 access patterns,
    selected automatically by :meth:`partition` from the build defines.
    """

    __slots__ = ("_gid", "_lid", "_group", "_lsize", "_gsize", "_defines")

    def __init__(self, gid, lid, group, lsize, gsize, defines):
        self._gid = gid
        self._lid = lid
        self._group = group
        self._lsize = lsize
        self._gsize = gsize
        self._defines = defines

    def global_id(self) -> int:
        return self._gid

    def local_id(self) -> int:
        return self._lid

    def group_id(self) -> int:
        return self._group

    def local_size(self) -> int:
        return self._lsize

    def global_size(self) -> int:
        return self._gsize

    def define(self, name: str, default=None):
        return self._defines.get(name, default)

    # -- §4.2 access patterns -------------------------------------------------

    def chunk(self, n: int) -> range:
        """Contiguous partition: thread *t* owns one consecutive slice.

        Optimal on CPUs (prefetching, caching)."""
        per = -(-n // self._gsize)  # ceil division
        lo = min(self._gid * per, n)
        hi = min(lo + per, n)
        return range(lo, hi)

    def strided(self, n: int) -> range:
        """Round-robin partition: neighbouring threads touch neighbouring
        elements.  Optimal on GPUs (coalescing)."""
        return range(self._gid, n, self._gsize)

    def partition(self, n: int) -> range:
        """The device-appropriate pattern, chosen via the injected
        ``ACCESS_PATTERN`` pre-processor constant (paper §4.2)."""
        if self._defines.get("ACCESS_PATTERN") == "coalesced":
            return self.strided(n)
        return self.chunk(n)


def run_reference(
    definition: KernelDef,
    args: Sequence[object],
    global_size: int,
    local_size: int,
    defines: Mapping[str, object] | None = None,
    device: Device | None = None,
) -> None:
    """Execute ``definition.ref_fn`` work-item by work-item.

    ``args`` uses the same conventions as a launch: :class:`Buffer` or raw
    numpy arrays for memory params, :class:`Local` placeholders for
    ``__local`` params, plain values for scalars.  Mutations happen
    in-place on the arrays.
    """
    if definition.ref_fn is None:
        raise InvalidKernelArgs(
            f"kernel {definition.name!r} has no reference implementation"
        )
    if global_size <= 0 or local_size <= 0:
        raise InvalidKernelArgs("global/local size must be positive")
    if global_size % local_size != 0:
        raise InvalidKernelArgs(
            f"global size {global_size} not divisible by local size {local_size}"
        )
    defines = dict(defines or {})
    if device is not None and "DEVICE_TYPE" not in defines:
        from .compiler import default_defines

        defines = {**default_defines(device.device_type), **defines}

    resolved: list[object] = []
    local_specs: list[tuple[int, Local]] = []
    for index, (param, arg) in enumerate(zip(definition.params, args)):
        if param.kind is ParamKind.LOCAL:
            if not isinstance(arg, Local):
                raise InvalidKernelArgs(
                    f"param {param.name!r} needs a Local placeholder"
                )
            local_specs.append((index, arg))
            resolved.append(None)  # replaced per work-group
        elif isinstance(arg, Buffer):
            resolved.append(arg.array)
        else:
            resolved.append(arg)

    num_groups = global_size // local_size
    for group in range(num_groups):
        group_args = list(resolved)
        for index, spec in local_specs:
            group_args[index] = np.zeros(spec.shape, dtype=spec.dtype)
        _run_group(
            definition, group_args, group, local_size, global_size, defines
        )


def _run_group(definition, group_args, group, local_size, global_size, defines):
    """Run one work-group: advance all items barrier-by-barrier."""
    items = []
    for lid in range(local_size):
        gid = group * local_size + lid
        wi = WorkItem(gid, lid, group, local_size, global_size, defines)
        gen = definition.ref_fn(wi, *group_args)
        if gen is None or not hasattr(gen, "__next__"):
            raise InvalidKernelArgs(
                f"reference kernel {definition.name!r} must be a generator "
                f"function (use 'yield' for barriers, end with 'return')"
            )
        items.append(gen)

    live = list(range(local_size))
    while live:
        at_barrier: list[int] = []
        finished: list[int] = []
        for idx in live:
            try:
                next(items[idx])
            except StopIteration:
                finished.append(idx)
            else:
                at_barrier.append(idx)
        if at_barrier and finished:
            raise BarrierDivergence(
                f"kernel {definition.name!r}, group {group}: work-items "
                f"{finished[:4]} finished while {at_barrier[:4]} wait at a "
                f"barrier"
            )
        live = at_barrier
