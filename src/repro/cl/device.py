"""Simulated compute devices and their analytic cost models.

The two stock profiles mirror the paper's testbed (§5.1):

* ``INTEL_XEON_E5620`` — quad-core Xeon driven through the Intel OpenCL SDK
  (2013 XE beta).  The SDK's inefficiencies observed in the paper are
  modelled explicitly: a bandwidth-efficiency factor (§5.2.3, the ~30 %
  aggregation gap) and a heavy host-side enqueue overhead (§5.3.2, the ~1 s
  fixed per-query cost).
* ``NVIDIA_GTX460`` — Fermi GF104 with 7 multiprocessors × 48 compute
  units, 2 GB device memory behind a PCIe 2.0 x16 link.

Devices convert :class:`~repro.cl.profile.KernelWork` descriptions into
simulated execution seconds.  The model is first-order and mechanistic —
the paper's observed effects (bitmap output advantage, atomic-contention
serialisation on few groups, transfer-bound swapping) *emerge* from it
rather than being hard-coded per experiment.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass, replace

from .profile import KernelWork

GB = 1024**3
MB = 1024**2


class DeviceType(enum.Enum):
    """Coarse device class, injected into kernels as a pre-processor
    constant (paper §4.2) to select the memory access pattern."""

    CPU = "CPU"
    GPU = "GPU"


@dataclass(frozen=True)
class DeviceProfile:
    """Static description of a compute device plus its cost-model knobs.

    The scheduling-related fields follow the paper's terminology: a device
    has ``compute_cores`` (``nc``) cores with ``units_per_core`` (``na``)
    compute units each.  Ocelot schedules one work-group per core with
    work-group size ``4 * na`` (§4.2).
    """

    name: str
    device_type: DeviceType
    vendor: str
    compute_cores: int                 # nc
    units_per_core: int                # na
    clock_ghz: float
    global_mem_bytes: int
    local_mem_bytes: int
    # --- memory system ------------------------------------------------
    stream_bw_gbs: float               # sequential streaming bandwidth
    random_bw_gbs: float               # data-dependent access bandwidth
    bandwidth_efficiency: float = 1.0  # driver/SDK achievable fraction
    # --- host link ----------------------------------------------------
    transfer_bw_gbs: float | None = None   # None => unified memory (zero-copy)
    transfer_latency_us: float = 0.0
    # --- launch costs ---------------------------------------------------
    kernel_launch_us: float = 5.0      # device-side launch latency
    host_submit_us: float = 5.0        # host-side enqueue cost (driver/SDK)
    #: fixed per-query framework overhead (the Intel SDK beta's ~1 s
    #: intercept the paper extrapolates in Fig. 7(d))
    framework_overhead_s: float = 0.0
    # --- compute / atomics ----------------------------------------------
    ops_per_cycle_per_unit: float = 1.0
    atomic_ns: float = 20.0            # uncontended atomic RMW
    atomic_conflict_ns: float = 150.0  # per-op contention cost at the limit
    #: distinct-address count at which contention has halved: CPUs bounce
    #: cachelines between cores as long as the hot set spans few lines;
    #: GPUs resolve colliding atomics in the memory partitions.
    contention_halfpoint: float = 300.0

    @property
    def parallel_width(self) -> int:
        """Total number of hardware threads executing concurrently."""
        return self.compute_cores * self.units_per_core

    @property
    def work_group_size(self) -> int:
        """Ocelot's scheduling heuristic: work-groups of size ``4 * na``."""
        return 4 * self.units_per_core

    @property
    def num_work_groups(self) -> int:
        """Ocelot's scheduling heuristic: one work-group per core."""
        return self.compute_cores

    @property
    def total_invocations(self) -> int:
        """Kernel invocations per launch under Ocelot scheduling
        (``4 * nc * na``, paper §4.2)."""
        return self.num_work_groups * self.work_group_size

    def with_memory(self, global_mem_bytes: int) -> "DeviceProfile":
        """Derive a profile with a different device-memory capacity.

        Used by tests and by mini-scale TPC-H runs that scale data volume
        and device capacity by the same factor (DESIGN.md §2).
        """
        return replace(self, global_mem_bytes=int(global_mem_bytes))


class Device:
    """A simulated OpenCL device: profile + cost model."""

    def __init__(self, profile: DeviceProfile):
        self.profile = profile

    # -- identity ---------------------------------------------------------

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def device_type(self) -> DeviceType:
        return self.profile.device_type

    @property
    def is_cpu(self) -> bool:
        return self.profile.device_type is DeviceType.CPU

    @property
    def is_gpu(self) -> bool:
        return self.profile.device_type is DeviceType.GPU

    @property
    def unified_memory(self) -> bool:
        """True when host and device share memory (zero-copy mapping)."""
        return self.profile.transfer_bw_gbs is None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        p = self.profile
        return (
            f"<Device {p.name!r} type={p.device_type.value} "
            f"nc={p.compute_cores} na={p.units_per_core} "
            f"mem={p.global_mem_bytes / GB:.2f}GB>"
        )

    # -- cost model ---------------------------------------------------------

    def kernel_time(self, work: KernelWork) -> float:
        """Simulated execution seconds for one kernel launch.

        ``max(memory, compute) + atomics + launch``: streaming and compute
        overlap (a kernel is bound by the slower of the two), whereas
        contended atomics serialise and therefore add.
        """
        p = self.profile
        eff_bw = p.stream_bw_gbs * p.bandwidth_efficiency * GB
        t_stream = (work.bytes_read + work.bytes_written) / eff_bw
        rand_bw = p.random_bw_gbs * p.bandwidth_efficiency * GB
        t_random = work.random_bytes / rand_bw if work.random_bytes else 0.0
        throughput = (
            p.compute_cores
            * p.units_per_core
            * p.clock_ghz
            * 1e9
            * p.ops_per_cycle_per_unit
        )
        t_compute = work.ops / throughput if work.ops else 0.0
        t_atomic = self._atomic_time(work)
        return max(t_stream + t_random, t_compute) + t_atomic + p.kernel_launch_us * 1e-6

    def _atomic_time(self, work: KernelWork) -> float:
        """Contention model for atomic read-modify-write traffic.

        Uncontended atomics are spread across the device's parallel width.
        Contention decays with the number of distinct target addresses:
        each op additionally pays ``atomic_conflict_ns / (1 + addresses /
        contention_halfpoint)``.  On the CPU the halfpoint is low (a few
        hundred addresses still fit a handful of cachelines that bounce
        between cores); on the GPU it is high and the conflict cost tiny.
        This reproduces Fig. 5(e)/(f): CPU hashing is slower than even
        sequential MonetDB at low distinct counts and *improves* as the
        distinct count grows, while the GPU stays nearly flat.
        """
        if not work.atomic_ops:
            return 0.0
        p = self.profile
        width = p.parallel_width
        addresses = max(work.atomic_addresses, 1)
        base = work.atomic_ops * p.atomic_ns * 1e-9 / width
        per_op_conflict = p.atomic_conflict_ns * 1e-9 / (
            1.0 + addresses / p.contention_halfpoint
        )
        return base + work.atomic_ops * per_op_conflict

    def transfer_time(self, nbytes: int) -> float:
        """Simulated host<->device transfer seconds for ``nbytes``.

        Unified-memory devices (the CPU) map buffers instead of copying;
        only a constant mapping cost applies (paper §3.3: "zero-copy").
        """
        p = self.profile
        if self.unified_memory:
            return p.transfer_latency_us * 1e-6
        return p.transfer_latency_us * 1e-6 + nbytes / (p.transfer_bw_gbs * GB)

    def host_submit_time(self) -> float:
        """Host-side cost of enqueueing one command (driver overhead)."""
        return self.profile.host_submit_us * 1e-6


# ---------------------------------------------------------------------------
# Stock profiles (paper §5.1 testbed)
# ---------------------------------------------------------------------------

#: Intel Xeon E5620 through the Intel OpenCL SDK 2013 XE beta.  The
#: ``bandwidth_efficiency`` of 0.7 models the SDK's immaturity (paper
#: §5.2.3 measured Ocelot ~30 % behind parallel MonetDB on pure streaming
#: aggregation); ``host_submit_us`` models the fixed framework overhead the
#: paper extrapolates to ~1 s per TPC-H query on the CPU (§5.3.2).
INTEL_XEON_E5620 = DeviceProfile(
    name="Intel Xeon E5620 (Intel OpenCL SDK 2013 XE beta)",
    device_type=DeviceType.CPU,
    vendor="Intel",
    compute_cores=4,
    units_per_core=4,
    clock_ghz=2.4,
    global_mem_bytes=32 * GB,
    local_mem_bytes=256 * 1024,
    stream_bw_gbs=25.6,
    random_bw_gbs=11.0,            # cacheline-granular gathers
    bandwidth_efficiency=0.70,
    transfer_bw_gbs=None,          # host-resident: zero-copy mapping
    transfer_latency_us=40.0,
    kernel_launch_us=30.0,
    host_submit_us=1400.0,         # Intel SDK enqueue overhead (heavy)
    framework_overhead_s=0.6,      # Intel SDK per-query fixed cost
    atomic_ns=24.0,
    atomic_conflict_ns=12.0,
    contention_halfpoint=300.0,
)

#: NVIDIA GTX 460 (Fermi GF104): 7 SMs x 48 CUs, 2 GB GDDR5, PCIe 2.0 x16.
NVIDIA_GTX460 = DeviceProfile(
    name="NVIDIA GeForce GTX 460 (Fermi GF104)",
    device_type=DeviceType.GPU,
    vendor="NVIDIA",
    compute_cores=7,
    units_per_core=48,
    clock_ghz=1.35,
    global_mem_bytes=2 * GB,
    local_mem_bytes=48 * 1024,
    stream_bw_gbs=115.0,
    random_bw_gbs=20.0,
    bandwidth_efficiency=0.85,
    transfer_bw_gbs=5.6,           # PCIe 2.0 x16 effective
    transfer_latency_us=15.0,
    kernel_launch_us=8.0,
    host_submit_us=20.0,
    atomic_ns=4.0,
    atomic_conflict_ns=1.5,
    contention_halfpoint=5000.0,
)


def checked_profile(profile: DeviceProfile) -> DeviceProfile:
    """Validate a device profile, raising ``ValueError`` on nonsense."""
    if profile.compute_cores <= 0 or profile.units_per_core <= 0:
        raise ValueError("device must have positive core / unit counts")
    if profile.global_mem_bytes <= 0:
        raise ValueError("device must have positive global memory")
    if not (0.0 < profile.bandwidth_efficiency <= 1.0):
        raise ValueError("bandwidth_efficiency must be in (0, 1]")
    if profile.stream_bw_gbs <= 0 or profile.random_bw_gbs <= 0:
        raise ValueError("bandwidths must be positive")
    if math.isnan(profile.clock_ghz) or profile.clock_ghz <= 0:
        raise ValueError("clock must be positive")
    return profile
