"""Work profiles: the cost-model currency of the simulated runtime.

Every kernel in the hardware-oblivious library describes the *work* a launch
performs (bytes streamed, bytes randomly accessed, arithmetic operations,
atomic traffic).  Devices translate a :class:`KernelWork` into simulated
execution time (see :mod:`repro.cl.device`).  Correct *results* always come
from actually executing the kernel on numpy arrays; only *reported times*
come from the cost model.

All quantities are **nominal**: when a benchmark runs a 4 M-element array
standing in for the paper's 256 M-element (1024 MB) column, the profile is
scaled by the context's ``data_scale`` so that simulated times are
comparable with the paper's measurements (see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, fields


@dataclass
class KernelWork:
    """Machine-independent description of the work done by one kernel launch.

    Attributes
    ----------
    elements:
        Number of logical input elements processed.
    bytes_read / bytes_written:
        Sequentially streamed traffic (coalescable on GPUs, prefetchable on
        CPUs).
    random_bytes:
        Gathered / scattered traffic with data-dependent addresses (hash
        probes, gathers through an oid list, radix scatter).
    ops:
        Arithmetic / comparison operations (one per four-byte value).
    atomic_ops:
        Number of atomic read-modify-write operations issued.
    atomic_addresses:
        Number of *distinct* memory addresses targeted by those atomics.
        The ratio ``atomic_ops / atomic_addresses`` drives the contention
        model: hashing a column with 100 distinct values hammers 100
        addresses and serialises (paper §5.2.4, Fig. 5(e)/(f)).
    """

    elements: int = 0
    bytes_read: int = 0
    bytes_written: int = 0
    random_bytes: int = 0
    ops: int = 0
    atomic_ops: int = 0
    atomic_addresses: int = 0

    def scaled(self, factor: float) -> "KernelWork":
        """Return a copy with all volume metrics multiplied by ``factor``.

        ``atomic_addresses`` is *not* scaled: it models distinct contended
        locations (e.g. group count), which is a property of the data
        distribution, not the data volume.
        """
        return KernelWork(
            elements=int(self.elements * factor),
            bytes_read=int(self.bytes_read * factor),
            bytes_written=int(self.bytes_written * factor),
            random_bytes=int(self.random_bytes * factor),
            ops=int(self.ops * factor),
            atomic_ops=int(self.atomic_ops * factor),
            atomic_addresses=self.atomic_addresses,
        )

    def __add__(self, other: "KernelWork") -> "KernelWork":
        return KernelWork(
            elements=self.elements + other.elements,
            bytes_read=self.bytes_read + other.bytes_read,
            bytes_written=self.bytes_written + other.bytes_written,
            random_bytes=self.random_bytes + other.random_bytes,
            ops=self.ops + other.ops,
            atomic_ops=self.atomic_ops + other.atomic_ops,
            atomic_addresses=max(self.atomic_addresses, other.atomic_addresses),
        )

    @property
    def total_bytes(self) -> int:
        return self.bytes_read + self.bytes_written + self.random_bytes

    def is_empty(self) -> bool:
        return all(getattr(self, f.name) == 0 for f in fields(self))
