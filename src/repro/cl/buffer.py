"""``cl_mem``-style device buffers.

A :class:`Buffer` owns a numpy array standing in for device-resident
storage, plus the per-buffer event registry the paper describes in §3.4:
*producer* events are tied to operations writing the buffer, *consumer*
events to operations reading it.  New commands wait on the producers of
their inputs (and, to order write-after-read, on the consumers of their
outputs); the Memory Manager consults consumers to decide when a buffer can
safely be discarded.

Buffer sizes are accounted in **nominal bytes** (actual bytes times the
context's ``data_scale``), so that device-capacity effects — eviction,
offloading, out-of-memory — trigger at the paper's data volumes even when
benchmarks run on proportionally smaller arrays (DESIGN.md §2).
"""

from __future__ import annotations

import itertools
from typing import TYPE_CHECKING

import numpy as np

from .errors import DeviceLost
from .event import Event

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context

_buffer_ids = itertools.count(1)


class Buffer:
    """A device-resident memory object holding a typed array."""

    def __init__(self, context: "Context", array: np.ndarray, tag: str = ""):
        self.buffer_id = next(_buffer_ids)
        self.context = context
        self._array: np.ndarray | None = np.ascontiguousarray(array)
        self.tag = tag or f"buf{self.buffer_id}"
        self.nominal_nbytes = int(self._array.nbytes * context.data_scale)
        # metadata survives release/offload (host code may still inspect
        # the shape of an offloaded buffer before restoring it)
        self._dtype = self._array.dtype
        self._size = int(self._array.size)
        self._nbytes = int(self._array.nbytes)
        # Event registry (paper §3.4).
        self.producer_events: list[Event] = []
        self.consumer_events: list[Event] = []
        self._released = False

    # -- data access -------------------------------------------------------

    @property
    def array(self) -> np.ndarray:
        """The device-side contents.  Only kernels and transfer commands
        should touch this; host code goes through ``enqueue_read``."""
        if self._released or self._array is None:
            raise DeviceLost(f"buffer {self.tag!r} was released")
        return self._array

    @property
    def dtype(self) -> np.dtype:
        return self._dtype

    @property
    def size(self) -> int:
        """Element count."""
        return self._size

    @property
    def nbytes(self) -> int:
        """Actual (in-process) byte size."""
        return self._nbytes

    @property
    def released(self) -> bool:
        return self._released

    # -- event registry ------------------------------------------------------

    def record_producer(self, event: Event) -> None:
        """Register ``event`` as the (new) producer of this buffer.

        A write defines fresh contents; earlier producer/consumer events
        are superseded and dropped from the registry.
        """
        self.producer_events = [event]
        self.consumer_events = []

    def record_consumer(self, event: Event) -> None:
        self.consumer_events.append(event)

    def dependencies_for_read(self) -> tuple[Event, ...]:
        """Events that must complete before a command may *read* this buffer."""
        return tuple(self.producer_events)

    def dependencies_for_write(self) -> tuple[Event, ...]:
        """Events that must complete before a command may *write* this buffer
        (write-after-write and write-after-read hazards)."""
        return tuple(self.producer_events) + tuple(self.consumer_events)

    def last_activity(self) -> float:
        """Simulated time at which the last registered operation ends.

        The Memory Manager uses this to know when eviction is safe."""
        events = self.producer_events + self.consumer_events
        return max((e.t_end for e in events), default=0.0)

    # -- lifecycle ---------------------------------------------------------

    def release(self) -> None:
        """Free the device allocation.  Idempotent."""
        if not self._released:
            self._released = True
            self._array = None
            self.context._on_buffer_released(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "released" if self._released else f"{self.nominal_nbytes}B nominal"
        return f"<Buffer #{self.buffer_id} {self.tag!r} {state}>"
