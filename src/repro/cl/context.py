"""OpenCL contexts: device state, allocation accounting, program cache.

A :class:`Context` ties together one device (the paper's Ocelot uses one
device at a time, §7), tracks nominal device-memory usage, and caches
compiled programs per pre-processor specialisation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

import numpy as np

from .device import Device, DeviceProfile, checked_profile
from .errors import DeviceLost, OutOfDeviceMemory

if TYPE_CHECKING:  # pragma: no cover
    from .buffer import Buffer
    from .kernel import Program


class Context:
    """Simulated ``cl_context`` bound to a single device.

    Parameters
    ----------
    device:
        The device (or profile) this context allocates on.
    data_scale:
        Nominal-scaling factor: one in-process array element stands for
        ``data_scale`` elements of the modelled workload.  Affects cost
        model inputs and device-memory accounting only — never results.
    """

    def __init__(self, device: Device | DeviceProfile, data_scale: float = 1.0):
        if isinstance(device, DeviceProfile):
            device = Device(checked_profile(device))
        if data_scale <= 0:
            raise ValueError("data_scale must be positive")
        self.device = device
        self.data_scale = float(data_scale)
        self.allocated_nominal = 0
        self.peak_nominal = 0
        self._buffers: dict[int, "Buffer"] = {}
        self._program_cache: dict[tuple, "Program"] = {}
        self._released = False

    # -- capacity ------------------------------------------------------------

    @property
    def capacity(self) -> int:
        """Nominal device-memory capacity in bytes."""
        return self.device.profile.global_mem_bytes

    @property
    def available(self) -> int:
        return self.capacity - self.allocated_nominal

    def can_allocate(self, nominal_nbytes: int) -> bool:
        return nominal_nbytes <= self.available

    # -- buffers ---------------------------------------------------------------

    def create_buffer(self, array: np.ndarray, tag: str = "") -> "Buffer":
        """Allocate a device buffer initialised with ``array``'s contents.

        Raises :class:`OutOfDeviceMemory` when the nominal footprint does
        not fit; Ocelot's Memory Manager handles that by evicting.
        """
        from .buffer import Buffer

        if self._released:
            raise DeviceLost("context was released")
        nominal = int(np.asarray(array).nbytes * self.data_scale)
        if not self.can_allocate(nominal):
            raise OutOfDeviceMemory(nominal, self.available, self.capacity)
        buf = Buffer(self, np.asarray(array), tag=tag)
        self.allocated_nominal += buf.nominal_nbytes
        self.peak_nominal = max(self.peak_nominal, self.allocated_nominal)
        self._buffers[buf.buffer_id] = buf
        return buf

    def empty(self, shape, dtype, tag: str = "") -> "Buffer":
        """Allocate an uninitialised device buffer."""
        return self.create_buffer(np.empty(shape, dtype=dtype), tag=tag)

    def zeros(self, shape, dtype, tag: str = "") -> "Buffer":
        return self.create_buffer(np.zeros(shape, dtype=dtype), tag=tag)

    def _on_buffer_released(self, buf: "Buffer") -> None:
        if buf.buffer_id in self._buffers:
            del self._buffers[buf.buffer_id]
            self.allocated_nominal -= buf.nominal_nbytes

    @property
    def live_buffers(self) -> int:
        return len(self._buffers)

    # -- program cache ----------------------------------------------------------

    def cached_program(self, key: tuple) -> "Program | None":
        return self._program_cache.get(key)

    def cache_program(self, key: tuple, program: "Program") -> None:
        self._program_cache[key] = program

    def build_program(self, library, defines: Mapping[str, object] | None = None):
        """Compile a kernel library for this context's device.

        Thin wrapper over :func:`repro.cl.compiler.build`; kept here so host
        code can say ``ctx.build_program(...)`` like with real OpenCL.
        """
        from .compiler import build

        return build(self, library, defines)

    # -- lifecycle ----------------------------------------------------------------

    def release(self) -> None:
        """Release all buffers and invalidate the context."""
        for buf in list(self._buffers.values()):
            buf.release()
        self._program_cache.clear()
        self._released = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Context device={self.device.name!r} scale={self.data_scale} "
            f"alloc={self.allocated_nominal}/{self.capacity}>"
        )
