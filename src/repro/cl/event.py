"""The OpenCL event model (simulated).

Events are the backbone of Ocelot's lazy execution model (paper §3.4):
operators only *schedule* kernels and transfers; ordering constraints are
expressed through event wait-lists, letting the driver overlap independent
work.  In this simulation, results are computed eagerly (numpy), while the
*simulated timeline* — queued / submit / start / end timestamps, like
``CL_PROFILING_COMMAND_*`` — is derived from the dependency graph and the
device cost model, including transfer/compute overlap.
"""

from __future__ import annotations

import enum
import itertools
from typing import Iterable, Sequence


class CommandType(enum.Enum):
    KERNEL = "kernel"
    WRITE_BUFFER = "write_buffer"
    READ_BUFFER = "read_buffer"
    COPY_BUFFER = "copy_buffer"
    MARKER = "marker"


class EventStatus(enum.Enum):
    QUEUED = "queued"
    COMPLETE = "complete"


_event_ids = itertools.count(1)


class Event:
    """Completion handle for one enqueued command.

    Attributes
    ----------
    t_queued, t_submit, t_start, t_end:
        Simulated timestamps in seconds on the queue's timeline.
    wait_for:
        The explicit + implicit (buffer producer/consumer) dependencies that
        gated this command's start.
    """

    __slots__ = (
        "event_id",
        "command_type",
        "label",
        "wait_for",
        "t_queued",
        "t_submit",
        "t_start",
        "t_end",
        "status",
        "engine",
    )

    def __init__(
        self,
        command_type: CommandType,
        label: str,
        wait_for: Sequence["Event"] = (),
    ):
        self.event_id = next(_event_ids)
        self.command_type = command_type
        self.label = label
        self.wait_for: tuple[Event, ...] = tuple(wait_for)
        self.t_queued = 0.0
        self.t_submit = 0.0
        self.t_start = 0.0
        self.t_end = 0.0
        self.status = EventStatus.QUEUED
        self.engine = ""

    # -- OpenCL-style API ----------------------------------------------------

    def wait(self) -> None:
        """Block until the command completed.

        Execution is eager in the simulation, so this only asserts state;
        it exists so host code reads like real OpenCL host code.
        """
        assert self.status is EventStatus.COMPLETE

    @property
    def duration(self) -> float:
        """Simulated execution seconds (``end - start``)."""
        return self.t_end - self.t_start

    @property
    def complete(self) -> bool:
        return self.status is EventStatus.COMPLETE

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Event #{self.event_id} {self.command_type.value} {self.label!r} "
            f"[{self.t_start * 1e3:.3f}ms..{self.t_end * 1e3:.3f}ms]>"
        )


def latest_end(events: Iterable[Event]) -> float:
    """Largest simulated end time among ``events`` (0.0 when empty)."""
    return max((e.t_end for e in events), default=0.0)
