"""The "vendor compiler": specialises kernel libraries for a device.

The paper's central mechanism (§4.2) is that a *single* kernel text is
compiled at runtime per device, with the architecture injected as a
pre-processor constant so kernels can pick device-appropriate memory
access patterns without becoming hardware-conscious at the source level.

:func:`build` mirrors ``clBuildProgram``: it takes a kernel library and a
set of defines, injects ``DEVICE_TYPE`` (and the derived access pattern),
and returns a :class:`~repro.cl.kernel.Program` whose kernels carry the
specialisation.  Programs are cached on the context keyed by the defines,
like a real driver's binary cache — the paper's "hot cache" measurements
(§5.3) assume compiled kernels.
"""

from __future__ import annotations

from typing import Mapping

from .context import Context
from .device import DeviceType
from .errors import BuildError
from .kernel import KernelDef, Program

#: Access-pattern constants selected per device type (paper §4.2, Fig. 4):
#: GPUs want neighbouring threads to touch neighbouring addresses
#: (coalescing); CPUs want each thread to stream a contiguous chunk
#: (prefetch/caching).
ACCESS_COALESCED = "coalesced"
ACCESS_SEQUENTIAL = "sequential"

#: Simulated one-off compilation latency per kernel (seconds).  Tracked on
#: the program for completeness; hot-cache measurements never include it.
_COMPILE_SECONDS_PER_KERNEL = 0.018


def default_defines(device_type: DeviceType) -> dict[str, object]:
    """Pre-processor constants the runtime injects for ``device_type``."""
    access = (
        ACCESS_COALESCED if device_type is DeviceType.GPU else ACCESS_SEQUENTIAL
    )
    return {
        "DEVICE_TYPE": device_type.value,
        "ACCESS_PATTERN": access,
    }


def build(
    context: Context,
    library: Mapping[str, KernelDef],
    defines: Mapping[str, object] | None = None,
) -> Program:
    """Compile ``library`` for ``context``'s device (``clBuildProgram``).

    Parameters
    ----------
    library:
        Mapping of kernel name to :class:`KernelDef`.
    defines:
        Extra pre-processor constants (e.g. ``RADIX_BITS``); merged over
        the injected device defaults.

    Returns the cached program when an identical specialisation was built
    before.
    """
    if not library:
        raise BuildError("cannot build an empty kernel library")
    merged = default_defines(context.device.device_type)
    if defines:
        merged.update(defines)
    key = (id(library), tuple(sorted((k, repr(v)) for k, v in merged.items())))
    cached = context.cached_program(key)
    if cached is not None:
        return cached

    program = Program(context=context, defines=dict(merged))
    for name, definition in library.items():
        if definition.name != name:
            raise BuildError(
                f"library key {name!r} does not match kernel name "
                f"{definition.name!r}"
            )
        if definition.vec_fn is None or definition.work_fn is None:
            raise BuildError(f"kernel {name!r} lacks an implementation")
        program.add(definition)
    program.build_time = _COMPILE_SECONDS_PER_KERNEL * len(library)
    context.cache_program(key, program)
    return program
