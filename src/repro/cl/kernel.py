"""Kernel objects: the hardware-oblivious unit of computation.

A :class:`KernelDef` carries everything the runtime needs for one kernel:

* ``source`` — pseudo-OpenCL C text (documentation / flavour; the paper's
  kernels are OpenCL C, ours are executable Python equivalents),
* ``params`` — the typed signature, from which the command queue derives
  buffer dependencies automatically (producer/consumer events, §3.4),
* ``ref_fn`` — a *work-item level* generator function executed by the
  reference interpreter (:mod:`repro.cl.workitem`); ``yield`` is
  ``barrier(CLK_LOCAL_MEM_FENCE)``,
* ``vec_fn`` — the "vendor compiler output": a vectorised numpy
  implementation specialised by pre-processor defines (``DEVICE_TYPE``,
  access pattern, radix width, ...),
* ``work_fn`` — the cost-model estimator returning a
  :class:`~repro.cl.profile.KernelWork`.

Both execution drivers consume the *same* ``KernelDef`` — this is the
hardware-oblivious contract the paper's design rests on.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Mapping, Sequence

import numpy as np

from .buffer import Buffer
from .errors import InvalidKernelArgs
from .profile import KernelWork

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context
    from .device import Device
    from .event import Event
    from .queue import CommandQueue


class ParamKind(enum.Enum):
    IN = "in"          # __global const T*  (read)
    OUT = "out"        # __global T*        (written)
    INOUT = "inout"    # __global T*        (read + written)
    SCALAR = "scalar"  # pass-by-value
    LOCAL = "local"    # __local T*         (per-work-group scratch)


@dataclass(frozen=True)
class Param:
    name: str
    kind: ParamKind


def params(spec: str) -> tuple[Param, ...]:
    """Parse a compact signature spec: ``"out:res in:inp scalar:n local:tmp"``."""
    out = []
    for token in spec.split():
        kind_s, _, name = token.partition(":")
        out.append(Param(name, ParamKind(kind_s)))
    return tuple(out)


class Local:
    """Launch-time placeholder for a ``__local`` memory argument.

    The reference interpreter materialises one array per work-group; the
    vectorised driver receives ``None`` (it does not emulate local memory).
    """

    def __init__(self, shape, dtype):
        self.shape = shape if isinstance(shape, tuple) else (int(shape),)
        self.dtype = np.dtype(dtype)

    @property
    def nbytes(self) -> int:
        n = 1
        for s in self.shape:
            n *= int(s)
        return n * self.dtype.itemsize


@dataclass
class ExecContext:
    """Runtime information handed to ``vec_fn`` / ``work_fn``."""

    device: "Device"
    defines: Mapping[str, object]
    global_size: int
    local_size: int

    @property
    def num_groups(self) -> int:
        return max(1, self.global_size // max(self.local_size, 1))


@dataclass(frozen=True)
class KernelDef:
    """Definition of one hardware-oblivious kernel (see module docstring)."""

    name: str
    params: tuple[Param, ...]
    vec_fn: Callable
    work_fn: Callable
    ref_fn: Callable | None = None
    source: str = ""

    def validate_args(self, args: Sequence[object]) -> None:
        if len(args) != len(self.params):
            raise InvalidKernelArgs(
                f"kernel {self.name!r} takes {len(self.params)} args, "
                f"got {len(args)}"
            )
        for param, arg in zip(self.params, args):
            if param.kind in (ParamKind.IN, ParamKind.OUT, ParamKind.INOUT):
                if not isinstance(arg, Buffer):
                    raise InvalidKernelArgs(
                        f"kernel {self.name!r} arg {param.name!r} must be a "
                        f"Buffer, got {type(arg).__name__}"
                    )
            elif param.kind is ParamKind.LOCAL:
                if not isinstance(arg, Local):
                    raise InvalidKernelArgs(
                        f"kernel {self.name!r} arg {param.name!r} must be a "
                        f"Local placeholder, got {type(arg).__name__}"
                    )
            elif isinstance(arg, (Buffer, Local)):
                raise InvalidKernelArgs(
                    f"kernel {self.name!r} arg {param.name!r} is scalar but a "
                    f"memory object was passed"
                )

    def reads(self, args: Sequence[object]) -> list[Buffer]:
        return [
            a
            for p, a in zip(self.params, args)
            if p.kind in (ParamKind.IN, ParamKind.INOUT)
        ]

    def writes(self, args: Sequence[object]) -> list[Buffer]:
        return [
            a
            for p, a in zip(self.params, args)
            if p.kind in (ParamKind.OUT, ParamKind.INOUT)
        ]


class Kernel:
    """A kernel bound to a compiled :class:`Program` (device + defines)."""

    def __init__(self, program: "Program", definition: KernelDef):
        self.program = program
        self.definition = definition

    @property
    def name(self) -> str:
        return self.definition.name

    def launch(
        self,
        queue: "CommandQueue",
        *args,
        global_size: int | None = None,
        local_size: int | None = None,
        wait_for: Sequence["Event"] = (),
    ) -> "Event":
        """Enqueue this kernel (``clEnqueueNDRangeKernel``)."""
        return queue.enqueue_kernel(
            self,
            args,
            global_size=global_size,
            local_size=local_size,
            wait_for=wait_for,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Kernel {self.name!r} of {self.program!r}>"


@dataclass
class Program:
    """A kernel library compiled ("specialised") for one device.

    ``defines`` holds the pre-processor constants injected at build time —
    the paper's mechanism for choosing device-specific access patterns
    inside otherwise hardware-oblivious kernels (§4.2).
    """

    context: "Context"
    defines: dict = field(default_factory=dict)
    build_time: float = 0.0
    _kernels: dict[str, Kernel] = field(default_factory=dict)

    def add(self, definition: KernelDef) -> None:
        self._kernels[definition.name] = Kernel(self, definition)

    def kernel(self, name: str) -> Kernel:
        try:
            return self._kernels[name]
        except KeyError:
            raise InvalidKernelArgs(f"program has no kernel {name!r}") from None

    def kernel_names(self) -> list[str]:
        return sorted(self._kernels)

    def __contains__(self, name: str) -> bool:
        return name in self._kernels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        dev = self.context.device.profile.device_type.value
        return f"<Program {len(self._kernels)} kernels for {dev}>"
