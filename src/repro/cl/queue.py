"""Command queues: lazy scheduling with simulated timelines.

Ocelot's execution model (paper §3.4) only *schedules* kernel invocations
and data transfers; ordering is communicated to the driver through event
wait-lists, and the driver is free to overlap independent operations.

This simulation executes commands eagerly (so results are always
available) but derives a *simulated schedule* from the dependency graph:

* the device has two engines — ``compute`` (kernels) and ``copy`` (DMA
  transfers) — each executing its commands in order,
* a command starts at ``max(engine available, host submit time, latest
  dependency end)``; transfers therefore overlap independent kernels
  exactly as Fig. 3 of the paper illustrates,
* the host timeline advances by the device driver's per-enqueue submit
  cost — which is how the Intel SDK's framework overhead (§5.3.2) enters
  the model.

``finish()`` joins all timelines (like ``clFinish``) and returns the
current makespan; measurements bracket work between two ``finish()`` calls.

**Per-session timelines** (serve layer, see ARCHITECTURE.md): when the
session scheduler interleaves several queries on one device queue, each
command is attributed to the queue's ``current_session``.  A session has
its own *floor* — the epoch before which none of its commands may start
(a session-scoped sync point, e.g. a cross-device hand-over of *its*
operand) — and its own completion frontier.  The queue's global engine
clocks still serialise same-device commands in order (device contention
stays real); only the cross-device barriers stop being global, which is
what lets independent queries overlap on different devices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from .buffer import Buffer
from .errors import DeviceLost, InvalidKernelArgs
from .event import CommandType, Event, EventStatus, latest_end
from .kernel import ExecContext, Kernel, Local, ParamKind

if TYPE_CHECKING:  # pragma: no cover
    from .context import Context


@dataclass
class QueueStats:
    """Cumulative activity counters (nominal bytes)."""

    kernels_launched: int = 0
    transfers_to_device: int = 0
    transfers_from_device: int = 0
    bytes_to_device: int = 0
    bytes_from_device: int = 0
    kernel_seconds: float = 0.0
    transfer_seconds: float = 0.0
    events: list[Event] = field(default_factory=list)

    def snapshot(self) -> "QueueStats":
        return QueueStats(
            kernels_launched=self.kernels_launched,
            transfers_to_device=self.transfers_to_device,
            transfers_from_device=self.transfers_from_device,
            bytes_to_device=self.bytes_to_device,
            bytes_from_device=self.bytes_from_device,
            kernel_seconds=self.kernel_seconds,
            transfer_seconds=self.transfer_seconds,
        )


class CommandQueue:
    """Simulated in-order-per-engine ``cl_command_queue``."""

    COMPUTE = "compute"
    COPY = "copy"

    def __init__(self, context: "Context"):
        self.context = context
        self.device = context.device
        self.host_time = 0.0
        self._engine_time = {self.COMPUTE: 0.0, self.COPY: 0.0}
        self.stats = QueueStats()
        self._released = False
        #: session the next scheduled commands belong to (``None`` =
        #: plain single-query execution, the default)
        self.current_session: str | None = None
        self._session_floor: dict[str, float] = {}
        self._session_end: dict[str, float] = {}

    # -- internal scheduling --------------------------------------------------

    def _check_alive(self) -> None:
        if self._released:
            raise DeviceLost("command queue was released")

    def _schedule(
        self,
        engine: str,
        duration: float,
        deps: Sequence[Event],
        command_type: CommandType,
        label: str,
    ) -> Event:
        self.host_time += self.device.host_submit_time()
        event = Event(command_type, label, wait_for=deps)
        event.t_queued = self.host_time
        event.t_submit = self.host_time
        start = max(self._engine_time[engine], event.t_submit, latest_end(deps))
        session = self.current_session
        if session is not None:
            start = max(start, self._session_floor.get(session, 0.0))
        event.t_start = start
        event.t_end = start + duration
        event.status = EventStatus.COMPLETE
        event.engine = engine
        self._engine_time[engine] = event.t_end
        if session is not None:
            self._session_end[session] = max(
                self._session_end.get(session, 0.0), event.t_end
            )
        self.stats.events.append(event)
        return event

    @staticmethod
    def _merge_deps(*groups: Sequence[Event]) -> tuple[Event, ...]:
        seen: dict[int, Event] = {}
        for group in groups:
            for ev in group:
                seen[ev.event_id] = ev
        return tuple(seen.values())

    # -- kernels ---------------------------------------------------------------

    def enqueue_kernel(
        self,
        kernel: Kernel,
        args: Sequence[object],
        global_size: int | None = None,
        local_size: int | None = None,
        wait_for: Sequence[Event] = (),
    ) -> Event:
        """Execute ``kernel`` and schedule it on the compute engine."""
        self._check_alive()
        definition = kernel.definition
        definition.validate_args(args)
        reads = definition.reads(args)
        writes = definition.writes(args)
        for buf in reads + writes:
            if buf.released:
                raise InvalidKernelArgs(
                    f"kernel {definition.name!r} got released buffer {buf.tag!r}"
                )

        profile = self.device.profile
        if local_size is None:
            local_size = profile.work_group_size
        if global_size is None:
            global_size = profile.total_invocations
        exec_ctx = ExecContext(
            device=self.device,
            defines=kernel.program.defines,
            global_size=int(global_size),
            local_size=int(local_size),
        )
        values = [
            arg.array
            if isinstance(arg, Buffer)
            else (None if isinstance(arg, Local) else arg)
            for arg in args
        ]
        # Eager execution: results materialise now; timing is simulated.
        definition.vec_fn(exec_ctx, *values)
        work = definition.work_fn(exec_ctx, *values)
        work = work.scaled(self.context.data_scale)
        duration = self.device.kernel_time(work)

        deps = self._merge_deps(
            wait_for,
            *(b.dependencies_for_read() for b in reads),
            *(b.dependencies_for_write() for b in writes),
        )
        event = self._schedule(
            self.COMPUTE, duration, deps, CommandType.KERNEL, definition.name
        )
        for buf in writes:
            buf.record_producer(event)
        for buf in reads:
            buf.record_consumer(event)
        self.stats.kernels_launched += 1
        self.stats.kernel_seconds += duration
        return event

    # -- transfers --------------------------------------------------------------

    def enqueue_write(
        self,
        buffer: Buffer,
        host_array: np.ndarray,
        wait_for: Sequence[Event] = (),
    ) -> Event:
        """Copy ``host_array`` into ``buffer`` (host -> device)."""
        self._check_alive()
        host_array = np.asarray(host_array)
        if host_array.nbytes != buffer.nbytes:
            raise InvalidKernelArgs(
                f"write of {host_array.nbytes} bytes into buffer "
                f"{buffer.tag!r} of {buffer.nbytes} bytes"
            )
        np.copyto(buffer.array.view(host_array.dtype), host_array)
        duration = self.device.transfer_time(buffer.nominal_nbytes)
        deps = self._merge_deps(wait_for, buffer.dependencies_for_write())
        event = self._schedule(
            self.COPY, duration, deps, CommandType.WRITE_BUFFER, buffer.tag
        )
        buffer.record_producer(event)
        self.stats.transfers_to_device += 1
        self.stats.bytes_to_device += buffer.nominal_nbytes
        self.stats.transfer_seconds += duration
        return event

    def enqueue_read(
        self, buffer: Buffer, wait_for: Sequence[Event] = ()
    ) -> tuple[np.ndarray, Event]:
        """Copy ``buffer`` back to the host (device -> host).

        Returns the host array and the transfer's event.
        """
        self._check_alive()
        host_array = buffer.array.copy()
        duration = self.device.transfer_time(buffer.nominal_nbytes)
        deps = self._merge_deps(wait_for, buffer.dependencies_for_read())
        event = self._schedule(
            self.COPY, duration, deps, CommandType.READ_BUFFER, buffer.tag
        )
        buffer.record_consumer(event)
        self.stats.transfers_from_device += 1
        self.stats.bytes_from_device += buffer.nominal_nbytes
        self.stats.transfer_seconds += duration
        return host_array, event

    def enqueue_copy(
        self, dst: Buffer, src: Buffer, wait_for: Sequence[Event] = ()
    ) -> Event:
        """Device-to-device copy."""
        self._check_alive()
        if dst.nbytes != src.nbytes:
            raise InvalidKernelArgs("copy size mismatch")
        np.copyto(dst.array.view(src.dtype), src.array)
        # On-device copies run at streaming bandwidth (read + write).
        profile = self.device.profile
        gbs = profile.stream_bw_gbs * profile.bandwidth_efficiency * 1024**3
        duration = 2 * src.nominal_nbytes / gbs
        deps = self._merge_deps(
            wait_for, src.dependencies_for_read(), dst.dependencies_for_write()
        )
        event = self._schedule(
            self.COPY, duration, deps, CommandType.COPY_BUFFER, dst.tag
        )
        dst.record_producer(event)
        src.record_consumer(event)
        return event

    def enqueue_marker(self, wait_for: Sequence[Event] = ()) -> Event:
        """Zero-duration synchronisation point on the compute engine."""
        self._check_alive()
        return self._schedule(
            self.COMPUTE, 0.0, tuple(wait_for), CommandType.MARKER, "marker"
        )

    # -- synchronisation -----------------------------------------------------------

    def makespan(self) -> float:
        """Current simulated completion time across host and both engines."""
        return max(self.host_time, *self._engine_time.values())

    def finish(self) -> float:
        """Block until all scheduled work completed (``clFinish``).

        Joins the host timeline with the device engines — subsequent
        commands cannot start earlier than the returned makespan — and
        returns that makespan in simulated seconds.
        """
        self._check_alive()
        t = self.makespan()
        self.host_time = t
        for engine in self._engine_time:
            self._engine_time[engine] = t
        return t

    def advance_to(self, t: float) -> None:
        """Join this queue's timelines to an external epoch ``t``.

        Used by the heterogeneous scheduler to model cross-device sync
        points: when an operand produced on another device's queue is
        consumed here, neither timeline may run ahead of the hand-over.
        Never moves time backwards.
        """
        self._check_alive()
        t = max(t, self.makespan())
        self.host_time = t
        for engine in self._engine_time:
            self._engine_time[engine] = t

    # -- per-session timelines (serve layer) ---------------------------------

    def open_session(self, session: str, epoch: float) -> None:
        """Start tracking ``session``; none of its commands may start
        before ``epoch`` (the simulated submit time)."""
        self._check_alive()
        self._session_floor[session] = max(
            epoch, self._session_floor.get(session, 0.0)
        )

    def close_session(self, session: str) -> None:
        """Forget a completed session's tracking state."""
        self._session_floor.pop(session, None)
        self._session_end.pop(session, None)

    def session_time(self, session: str) -> float:
        """The session's frontier on this queue: the end of its latest
        command, or its floor if it has not enqueued anything here."""
        return max(
            self._session_floor.get(session, 0.0),
            self._session_end.get(session, 0.0),
        )

    def advance_session_to(self, session: str, t: float) -> None:
        """Session-scoped :meth:`advance_to`: a cross-queue sync point
        that floors only ``session``'s future commands — other sessions'
        timelines on this queue are unaffected."""
        self._check_alive()
        self._session_floor[session] = max(
            t, self._session_floor.get(session, 0.0)
        )

    def timeline(self) -> list[Event]:
        """All scheduled events ordered by simulated start time."""
        return sorted(self.stats.events, key=lambda e: (e.t_start, e.event_id))

    def release(self) -> None:
        self._released = True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<CommandQueue {self.device.name!r} t={self.makespan() * 1e3:.3f}ms "
            f"kernels={self.stats.kernels_launched}>"
        )
