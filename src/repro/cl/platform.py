"""Platform discovery: the simulated equivalent of ``clGetPlatformIDs``.

Two stock platforms mirror the paper's testbed: an Intel OpenCL SDK
platform exposing the Xeon E5620, and an NVIDIA platform exposing the
GTX 460.  Tests and benchmarks can also register custom profiles (e.g. a
GPU with tiny memory to provoke eviction).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import (
    Device,
    DeviceProfile,
    DeviceType,
    INTEL_XEON_E5620,
    NVIDIA_GTX460,
    checked_profile,
)


@dataclass(frozen=True)
class Platform:
    """A vendor OpenCL implementation exposing one or more devices."""

    name: str
    vendor: str
    profiles: tuple[DeviceProfile, ...]

    def get_devices(self, device_type: DeviceType | None = None) -> list[Device]:
        return [
            Device(p)
            for p in self.profiles
            if device_type is None or p.device_type is device_type
        ]


_STOCK_PLATFORMS = (
    Platform(
        name="Intel OpenCL SDK 2013 XE (simulated)",
        vendor="Intel",
        profiles=(INTEL_XEON_E5620,),
    ),
    Platform(
        name="NVIDIA CUDA OpenCL (simulated, driver 310.32)",
        vendor="NVIDIA",
        profiles=(NVIDIA_GTX460,),
    ),
)


def get_platforms() -> tuple[Platform, ...]:
    """All available (simulated) OpenCL platforms."""
    return _STOCK_PLATFORMS


def get_device(kind: str | DeviceType, global_mem_bytes: int | None = None) -> Device:
    """Convenience lookup: ``get_device("cpu")`` / ``get_device("gpu")``.

    ``global_mem_bytes`` overrides the profile's device memory; mini-scale
    TPC-H runs never need this (they scale via ``data_scale`` instead), but
    targeted tests use it to provoke memory pressure cheaply.
    """
    if isinstance(kind, str):
        try:
            kind = DeviceType(kind.upper())
        except ValueError:
            raise LookupError(f"no simulated device of type {kind!r}") from None
    for platform in _STOCK_PLATFORMS:
        devices = platform.get_devices(kind)
        if devices:
            device = devices[0]
            if global_mem_bytes is not None:
                device = Device(
                    checked_profile(device.profile.with_memory(global_mem_bytes))
                )
            return device
    raise LookupError(f"no simulated device of type {kind}")
